#include "src/core/async_solver.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/core/initial_assignment.h"
#include "src/core/local_search.h"
#include "src/core/lp_rounding.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/shard/demand_splitter.h"
#include "src/shard/shard_planner.h"
#include "src/shard/shard_solve.h"
#include "src/shard/stitch_repair.h"
#include "src/util/logging.h"
#include "src/util/monotonic_time.h"

namespace ras {
namespace {

// Capacity shortfall of the final assignment: per buffered reservation,
// max(0, C_r - (total RRU - worst-MSB RRU)) over available servers.
double ComputeShortfall(const SolveInput& input,
                        const std::vector<std::pair<ServerId, ReservationId>>& targets) {
  const RegionTopology& topo = *input.topology;
  // Lookup-only (never iterated): hash order cannot leak into the shortfall.
  std::unordered_map<ReservationId, int> res_index;
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    res_index[input.reservations[r].id] = static_cast<int>(r);
  }
  std::vector<double> total(input.reservations.size(), 0.0);
  std::vector<std::map<MsbId, double>> per_msb(input.reservations.size());
  for (const auto& [server, res] : targets) {
    if (res == kUnassigned) {
      continue;
    }
    auto it = res_index.find(res);
    if (it == res_index.end()) {
      continue;
    }
    const Server& s = topo.server(server);
    double v = input.reservations[static_cast<size_t>(it->second)].ValueOfType(s.type);
    total[static_cast<size_t>(it->second)] += v;
    per_msb[static_cast<size_t>(it->second)][s.msb] += v;
  }
  double shortfall = 0.0;
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    const ReservationSpec& spec = input.reservations[r];
    double worst = 0.0;
    if (spec.needs_correlated_buffer) {
      for (const auto& [msb, rru] : per_msb[r]) {
        worst = std::max(worst, rru);
      }
    }
    shortfall += std::max(0.0, spec.capacity_rru - (total[r] - worst));
  }
  return shortfall;
}

// Round-level reuse summary: reuse "held" for the round when every phase that
// ran reused that way; the delta is phase 1's (region-wide) server delta.
void SummarizeReuse(SolveStats& stats) {
  stats.model_patched = stats.phase1.ran && stats.phase1.model_patched &&
                        (!stats.phase2.ran || stats.phase2.model_patched);
  stats.basis_reused = stats.phase1.ran && stats.phase1.basis_reused &&
                       (!stats.phase2.ran || stats.phase2.basis_reused);
  stats.solve_skipped = stats.phase1.ran && stats.phase1.solve_skipped &&
                        (!stats.phase2.ran || stats.phase2.solve_skipped);
  stats.delta_servers = stats.phase1.delta_servers;
  stats.dual_resolves = stats.phase1.dual_resolves + stats.phase2.dual_resolves;
  stats.dual_iterations = stats.phase1.dual_iterations + stats.phase2.dual_iterations;
  stats.presolve_rows_removed =
      stats.phase1.presolve_rows_removed + stats.phase2.presolve_rows_removed;
}

// Metrics recorded once per completed solve (any mode, monolithic or
// sharded aggregate). Record-only: nothing here is read back by the solver.
void RecordSolveMetrics(const SolveStats& stats) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  static obs::Counter& solves =
      reg.counter("ras_solver_solves_total", "Completed solves (all modes).");
  static obs::Counter& patched =
      reg.counter("ras_solver_model_patched_total", "Rounds that patched the cached model.");
  static obs::Counter& basis =
      reg.counter("ras_solver_basis_reused_total", "Rounds that restarted from a cached basis.");
  static obs::Counter& skipped =
      reg.counter("ras_solver_solves_skipped_total", "Rounds served by the skip-solve fast path.");
  static obs::Counter& moves =
      reg.counter("ras_solver_moves_total", "Server moves proposed by completed solves.");
  static obs::Counter& dual_resolves = reg.counter(
      "ras_solver_dual_resolves_total", "Node LPs re-optimized by the dual simplex kernel.");
  static obs::Counter& dual_iterations = reg.counter(
      "ras_solver_dual_iterations_total", "Dual simplex pivots across completed solves.");
  static obs::Counter& presolve_rows = reg.counter(
      "ras_solver_presolve_rows_removed_total", "Rows removed by LP presolve across solves.");
  static obs::Histogram& seconds = reg.histogram(
      "ras_solver_solve_seconds", "End-to-end solve wall time.", 0.0, 30.0, 120);
  static obs::Histogram& delta = reg.histogram(
      "ras_solver_delta_servers", "Round-over-round server delta (warm rounds only).", 0.0,
      4096.0, 64);
  solves.Add();
  if (stats.model_patched) {
    patched.Add();
  }
  if (stats.basis_reused) {
    basis.Add();
  }
  if (stats.solve_skipped) {
    skipped.Add();
  }
  moves.Add(static_cast<int64_t>(stats.moves_total));
  dual_resolves.Add(stats.dual_resolves);
  dual_iterations.Add(stats.dual_iterations);
  presolve_rows.Add(stats.presolve_rows_removed);
  seconds.Observe(stats.total_seconds);
  if (stats.delta_servers >= 0) {
    delta.Observe(static_cast<double>(stats.delta_servers));
  }
}

}  // namespace

AsyncSolver::PhaseOutcome AsyncSolver::RunPhase(const SolveInput& input,
                                                const std::vector<EquivalenceClass>& classes,
                                                bool include_rack_spread,
                                                const std::vector<int>& subset,
                                                const MipOptions& mip_options,
                                                double snapshot_seconds, int phase) {
  obs::SpanScope phase_span(obs::Tracer::Default(), phase == 2 ? "phase2" : "phase1");
  PhaseOutcome outcome;
  outcome.stats.ran = true;
  outcome.stats.timings.ras_build_s = snapshot_seconds;

  const bool cache_on =
      phase > 0 && config_.incremental_resolve && config_.backend == SolverBackend::kMip;
  ResolveEntry* entry = cache_on ? &resolve_cache_.entry(phase, resolve_shard_) : nullptr;

  // Solver build: patch the cached model in place when this round is
  // structurally equal to the cached one, else full symmetry-reduced
  // construction (the Figure-8 solver_build step the patch path eliminates).
  double t0 = util::MonotonicSeconds();
  RoundDelta delta;
  bool have_delta = false;
  bool patched = false;
  if (entry != nullptr && entry->valid && entry->include_rack_spread == include_rack_spread &&
      entry->subset == subset) {
    delta = ComputeRoundDelta(entry->input, input);
    delta.classes_structurally_equal =
        delta.reservations_structurally_equal && ClassStructureEqual(entry->classes, classes);
    have_delta = true;
    if (delta.patchable()) {
      patched = PatchRasModel(entry->built, input, classes, config_, include_rack_spread, subset);
    }
  }
  BuiltModel fresh;
  if (!patched) {
    fresh = BuildRasModel(input, classes, config_, include_rack_spread, subset);
  }
  BuiltModel& built = patched ? entry->built : fresh;
  outcome.stats.timings.solver_build_s = util::MonotonicSeconds() - t0;
  outcome.stats.model_patched = patched;
  outcome.stats.delta_servers = have_delta ? delta.delta_servers() : -1;
  outcome.stats.assignment_variables = built.num_assignment_variables();
  outcome.stats.model_rows = built.model.num_rows();
  outcome.stats.model_variables = built.model.num_variables();
  outcome.stats.memory_bytes = built.EstimatedMemoryBytes();

  std::vector<double> local_solution;
  const std::vector<double>* solution = nullptr;
  std::vector<double> skip_counts;
  SimplexBasis new_root_basis;
  const double gap = mip_options.absolute_gap;

  // Skip-solve fast path, checked before the greedy initial state so a
  // skipped round pays for neither the greedy construction nor the MIP. Two
  // regimes share the path:
  //   - Exactly-empty delta (the default knob, 0 changed servers): the input
  //     is bitwise the cached round's input, and the cold pipeline is
  //     deterministic — re-solving would recompute exactly the cached
  //     incumbent. Returning it is parity-exact with no proof needed, even
  //     when the cached solve was node-limited (kFeasible); the round reports
  //     the cached round's true MIP status.
  //   - Trivial non-empty delta (knob raised): an approximation, allowed only
  //     when the shifted incumbent revalidates against the cached proven
  //     bound within the configured gap.
  if (patched && delta.reservations_resized == 0 &&
      delta.delta_servers() <= config_.skip_solve_max_delta_servers) {
    t0 = util::MonotonicSeconds();
    const bool exact_delta = delta.delta_servers() == 0;
    std::vector<double> shifted;
    if (ShiftIncumbentCounts(*entry, classes, &shifted)) {
      std::vector<double> shifted_warm = MakeWarmStart(input, classes, built, shifted);
      const double shifted_obj = built.model.Objective(shifted_warm);
      if (built.model.IsFeasible(shifted_warm, mip_options.integrality_tol * 10) &&
          (exact_delta || shifted_obj <= entry->best_bound + gap)) {
        local_solution = std::move(shifted_warm);
        solution = &local_solution;
        skip_counts = std::move(shifted);
        outcome.stats.timings.initial_state_s = util::MonotonicSeconds() - t0;
        outcome.stats.mip_status = exact_delta ? entry->mip_status : MipStatus::kOptimal;
        outcome.stats.nodes = 0;
        outcome.stats.objective = shifted_obj;
        outcome.stats.warm_start_objective = shifted_obj;
        outcome.stats.best_bound = entry->best_bound;
        outcome.stats.solve_skipped = true;
      }
    }
  }

  if (solution == nullptr) {
    // Initial state: greedy warm start, polished by a short local search (the
    // two backends compose — the search's relocate moves fix spread cheaply,
    // and the MIP then starts from, and can only improve on, that incumbent).
    // Computed identically whether the model was patched or rebuilt: the
    // bound-gated path below hands exactly this incumbent back when the root
    // bound prunes, which is also what the cold branch-and-bound returns, so
    // incremental and cold rounds produce identical targets.
    t0 = util::MonotonicSeconds();
    std::vector<double> counts = BuildInitialCounts(input, classes, built);
    if (config_.backend == SolverBackend::kMip) {
      LocalSearchOptions polish;
      polish.time_limit_seconds = std::min(1.0, mip_options.time_limit_seconds * 0.1);
      polish.seed = 17;
      // The greedy start is already move-minimal; cap the rejected-proposal
      // patience so a polish with nothing to find exits in ~ms instead of
      // grinding its full proposal budget (identical knob on every pipeline).
      polish.stall_limit = config_.polish_stall_limit;
      counts = LocalSearchOptimize(input, classes, built, counts, polish).counts;
    }
    std::vector<double> warm = MakeWarmStart(input, classes, built, counts);
    const double warm_obj = built.model.Objective(warm);
    outcome.stats.warm_start_objective = warm_obj;
    outcome.stats.timings.initial_state_s = util::MonotonicSeconds() - t0;

    // Optimize (Section 6: the backend is pluggable; MIP is the paper's
    // choice for RAS, local search the near-realtime alternative).
    t0 = util::MonotonicSeconds();
    if (config_.backend == SolverBackend::kLocalSearch) {
      LocalSearchOptions ls_options;
      ls_options.time_limit_seconds = mip_options.time_limit_seconds;
      LocalSearchResult ls = LocalSearchOptimize(input, classes, built, counts, ls_options);
      local_solution = MakeWarmStart(input, classes, built, ls.counts);
      solution = &local_solution;
      outcome.stats.timings.mip_s = util::MonotonicSeconds() - t0;
      outcome.stats.mip_status = MipStatus::kFeasible;  // No optimality proof.
      outcome.stats.nodes = ls.proposals;
      outcome.stats.objective = ls.final_objective;
      outcome.stats.best_bound = -kInf;
    } else {
      const int effective_threads = std::max(mip_options.threads, config_.solver_threads);

      // Bound-gated fast path: re-solve only the root LP, restarting from the
      // cached basis, and compare its bound against the greedy incumbent. When
      // the bound prunes (the serial branch-and-bound's first decision, taken
      // before any heuristic or branching), the B&B would return the warm
      // incumbent untouched — so return it here without opening the tree,
      // replacing the entire cold root solve + search with one basis
      // refactorization and a few pivots. When the bound does not prune, the
      // probe is discarded and the MIP below runs exactly as if cold. Serial
      // solves only: the parallel search runs its heuristic before the root
      // prune, so its pruned outcome is not the plain warm incumbent. Gated
      // on the cached round's own gap: when last round's incumbent already
      // sat far above its LP bound (the structural integer-ceil regime), this
      // round's root bound cannot prune either — the probe would be a wasted
      // refactorization every round.
      if (patched && effective_threads == 1 && !entry->root_basis.empty() &&
          entry->objective - entry->best_bound <= 2 * gap &&
          built.model.IsFeasible(warm, mip_options.integrality_tol * 10)) {
        SimplexSolver probe{LpOptions()};
        if (probe.ImportBasis(built.model, entry->root_basis)) {
          LpResult root = probe.ResolveWithBasis(built.model, {});
          outcome.stats.dual_iterations += root.dual_iterations;
          if (root.used_dual_simplex) {
            ++outcome.stats.dual_resolves;
          }
          if (root.status == LpStatus::kOptimal && root.objective > warm_obj - gap) {
            solution = &warm;
            new_root_basis = probe.ExportBasis();
            outcome.stats.timings.mip_s = util::MonotonicSeconds() - t0;
            outcome.stats.mip_status = MipStatus::kOptimal;
            outcome.stats.nodes = 1;
            outcome.stats.objective = warm_obj;
            // Proven within gap: reported as the objective, matching the
            // cold B&B's accounting for a root prune.
            outcome.stats.best_bound = warm_obj;
            outcome.stats.basis_reused = true;
          }
        }
      }

      if (solution == nullptr) {
        MipOptions options = mip_options;
        options.lp = LpOptions();
        options.threads = effective_threads;
        options.heuristic = MakeLpRoundingHeuristic(input, classes, built);
        if (patched && !config_.resolve_strict_parity) {
          options.root_basis = entry->root_basis;
        }
        MipSolver solver(options);
        MipResult mip = solver.Solve(built.model, &warm);
        outcome.stats.timings.mip_s = util::MonotonicSeconds() - t0;
        outcome.stats.mip_status = mip.status;
        outcome.stats.nodes = mip.nodes;
        outcome.stats.basis_reused = mip.root_basis_used;
        outcome.stats.dual_resolves += mip.dual_resolves;
        outcome.stats.dual_iterations += mip.lp_dual_iterations;
        outcome.stats.presolve_rows_removed += mip.presolve_rows_removed;
        new_root_basis = std::move(mip.root_basis);
        if (mip.status == MipStatus::kOptimal || mip.status == MipStatus::kFeasible) {
          local_solution = std::move(mip.x);
          solution = &local_solution;
          outcome.stats.objective = mip.objective;
          outcome.stats.best_bound = mip.best_bound;
        } else {
          // MIP produced nothing usable: ship the greedy initial state,
          // exactly the paper's posture that a timed-out solve must still
          // yield a valid (possibly suboptimal) assignment.
          RAS_LOG(kWarning) << "MIP returned " << MipStatusName(mip.status)
                            << "; falling back to the greedy initial state";
          local_solution = std::move(warm);
          solution = &local_solution;
          outcome.stats.objective = outcome.stats.warm_start_objective;
          outcome.stats.best_bound = mip.best_bound;
        }
      } else if (solution == &warm) {
        local_solution = std::move(warm);
        solution = &local_solution;
      }
    }
  }

  outcome.decoded = DecodeAssignment(input, classes, built, *solution);
  outcome.shortfall_rru = 0.0;
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    if (built.shortfall_vars[r] != kNoVar) {
      outcome.shortfall_rru += (*solution)[built.shortfall_vars[r]];
    }
  }

  // Persist this round's warm state for the next: the (possibly freshly
  // built) model moves into the entry, along with the incumbent's assignment
  // counts, its objective/bound, and the root basis. A round whose MIP
  // produced nothing trustworthy leaves the entry invalid — the fallback
  // greedy answer carries no bound worth reusing.
  if (entry != nullptr) {
    const bool usable = outcome.stats.mip_status == MipStatus::kOptimal ||
                        outcome.stats.mip_status == MipStatus::kFeasible;
    if (!usable) {
      entry->valid = false;
    } else {
      if (outcome.stats.solve_skipped) {
        entry->counts = std::move(skip_counts);
      } else {
        entry->counts.resize(built.assignment_vars.size());
        for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
          entry->counts[k] = (*solution)[static_cast<size_t>(built.assignment_vars[k].var)];
        }
        // A skipped round keeps the cached basis (the model is unchanged
        // within the skip tolerance); every other round replaces it.
        entry->root_basis = std::move(new_root_basis);
      }
      entry->input = input;
      entry->classes = classes;
      entry->include_rack_spread = include_rack_spread;
      entry->subset = subset;
      if (!patched) {
        entry->built = std::move(fresh);
      }
      entry->objective = outcome.stats.objective;
      entry->best_bound = outcome.stats.best_bound;
      entry->mip_status = outcome.stats.mip_status;
      entry->valid = true;
    }
  }

  {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    static obs::Counter& phases = reg.counter("ras_solver_phases_total", "Phase solves run.");
    static obs::Counter& nodes =
        reg.counter("ras_solver_mip_nodes_total", "Branch-and-bound nodes across phase solves.");
    static obs::Histogram& phase_seconds = reg.histogram(
        "ras_solver_phase_seconds", "Wall time of one phase (build + warm start + MIP).", 0.0,
        30.0, 120);
    phases.Add();
    nodes.Add(outcome.stats.nodes);
    const StepTimings& t = outcome.stats.timings;
    phase_seconds.Observe(t.solver_build_s + t.initial_state_s + t.mip_s);
    phase_span.set_value(outcome.stats.delta_servers);
  }
  return outcome;
}

std::vector<double> AsyncSolver::RackOverflow(const SolveInput& input,
                                              const DecodedAssignment& decoded) {
  const RegionTopology& topo = *input.topology;
  std::unordered_map<ReservationId, int> res_index;
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    res_index[input.reservations[r].id] = static_cast<int>(r);
  }
  // Per (reservation, rack) RRU.
  std::vector<std::map<RackId, double>> rack_rru(input.reservations.size());
  for (const auto& [server, res] : decoded.targets) {
    if (res == kUnassigned) {
      continue;
    }
    auto it = res_index.find(res);
    if (it == res_index.end()) {
      continue;
    }
    const Server& s = topo.server(server);
    double v = input.reservations[static_cast<size_t>(it->second)].ValueOfType(s.type);
    rack_rru[static_cast<size_t>(it->second)][s.rack] += v;
  }
  std::vector<double> overflow(input.reservations.size(), 0.0);
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    const ReservationSpec& spec = input.reservations[r];
    double alpha_k = spec.rack_spread_alpha > 0.0
                         ? spec.rack_spread_alpha
                         : config_.rack_alpha_factor / static_cast<double>(topo.num_racks());
    double threshold = std::max(alpha_k * spec.capacity_rru, config_.min_spread_threshold_rru);
    for (const auto& [rack, rru] : rack_rru[r]) {
      overflow[r] += std::max(0.0, rru - threshold);
    }
  }
  return overflow;
}

const char* SolveModeName(SolveMode mode) {
  switch (mode) {
    case SolveMode::kFullTwoPhase:
      return "FULL_TWO_PHASE";
    case SolveMode::kPhase1Only:
      return "PHASE1_ONLY";
    case SolveMode::kIncumbentOnly:
      return "INCUMBENT_ONLY";
  }
  return "UNKNOWN";
}

Result<SolveStats> AsyncSolver::SolveSnapshot(const SolveInput& input,
                                              DecodedAssignment* decoded_out, SolveMode mode) {
  if (input.topology == nullptr || input.catalog == nullptr) {
    return Status::InvalidArgument("solve input missing topology or catalog");
  }
  if (fault_hook_) {
    Status injected = fault_hook_(mode);
    if (!injected.ok()) {
      // A faulted round leaves no trustworthy continuity to diff against;
      // whatever happens next must cold-start.
      InvalidateResolveCache();
      return injected;
    }
  }
  if (mode != SolveMode::kFullTwoPhase) {
    // Degraded ladder rungs run reduced pipelines whose outputs the
    // incremental machinery must never treat as a previous full round.
    InvalidateResolveCache();
  }

  // Shard decomposition (src/shard): K > 1 partitions the region and solves
  // the shards independently. shard_count == 1 resolves to 1 and falls
  // through to the monolithic path below, bit-for-bit unchanged.
  const int shards = EffectiveShardCount(config_.shard_count, input.servers.size(),
                                         input.topology->num_racks());
  if (shards > 1) {
    return SolveSharded(input, decoded_out, mode, shards);
  }

  obs::SpanScope solve_span(obs::Tracer::Default(), "solve");
  double start = util::MonotonicSeconds();
  SolveStats stats;

  if (mode == SolveMode::kIncumbentOnly) {
    // Degraded rung: skip the MIP entirely and ship the greedy spread-aware
    // repair of the current assignment — bounded milliseconds, always
    // produces a valid (if suboptimal) region-wide assignment.
    double t0 = util::MonotonicSeconds();
    std::vector<EquivalenceClass> classes = BuildEquivalenceClasses(input, Scope::kMsb);
    BuiltModel built = BuildRasModel(input, classes, config_, /*include_rack_spread=*/false);
    stats.phase1.timings.ras_build_s = util::MonotonicSeconds() - t0;
    stats.phase1.assignment_variables = built.num_assignment_variables();
    stats.phase1.model_rows = built.model.num_rows();
    stats.phase1.model_variables = built.model.num_variables();
    stats.phase1.memory_bytes = built.EstimatedMemoryBytes();
    t0 = util::MonotonicSeconds();
    std::vector<double> counts = BuildInitialCounts(input, classes, built);
    std::vector<double> warm = MakeWarmStart(input, classes, built, counts);
    stats.phase1.timings.initial_state_s = util::MonotonicSeconds() - t0;
    stats.phase1.ran = true;
    stats.phase1.mip_status = MipStatus::kFeasible;  // Greedy: no bound.
    stats.phase1.objective = built.model.Objective(warm);
    stats.phase1.warm_start_objective = stats.phase1.objective;
    stats.phase1.best_bound = -kInf;
    DecodedAssignment decoded = DecodeAssignment(input, classes, built, warm);
    for (const auto& [server, res] : decoded.targets) {
      const ServerSolveState& before = input.servers[server];
      if (before.current != res) {
        ++stats.moves_total;
        (before.in_use ? stats.moves_in_use : stats.moves_idle)++;
      }
    }
    stats.total_shortfall_rru = ComputeShortfall(input, decoded.targets);
    stats.total_seconds = util::MonotonicSeconds() - start;
    RecordSolveMetrics(stats);
    if (decoded_out != nullptr) {
      *decoded_out = std::move(decoded);
    }
    return stats;
  }

  // ---- Phase 1: MSB granularity, region-wide ----
  double t0 = util::MonotonicSeconds();
  std::vector<EquivalenceClass> classes1 = BuildEquivalenceClasses(input, Scope::kMsb);
  double ras_build1 = util::MonotonicSeconds() - t0;
  PhaseOutcome phase1 = RunPhase(input, classes1, /*include_rack_spread=*/false, {},
                                 config_.phase1_mip, ras_build1,
                                 mode == SolveMode::kFullTwoPhase ? 1 : 0);
  stats.phase1 = phase1.stats;

  // Working assignment after phase 1.
  std::vector<std::pair<ServerId, ReservationId>> final_targets = phase1.decoded.targets;

  // ---- Phase 2: rack granularity for the worst rack offenders ----
  if (mode == SolveMode::kPhase1Only) {
    for (const auto& [server, res] : final_targets) {
      const ServerSolveState& before = input.servers[server];
      if (before.current != res) {
        ++stats.moves_total;
        (before.in_use ? stats.moves_in_use : stats.moves_idle)++;
      }
    }
    stats.total_shortfall_rru = ComputeShortfall(input, final_targets);
    stats.total_seconds = util::MonotonicSeconds() - start;
    SummarizeReuse(stats);
    RecordSolveMetrics(stats);
    if (decoded_out != nullptr) {
      decoded_out->targets = std::move(final_targets);
      decoded_out->moves_total = stats.moves_total;
      decoded_out->moves_in_use = stats.moves_in_use;
      decoded_out->moves_idle = stats.moves_idle;
    }
    return stats;
  }
  t0 = util::MonotonicSeconds();
  SolveInput input2 = input;  // Apply phase-1 targets as the new current state.
  for (const auto& [server, res] : final_targets) {
    input2.servers[server].current = res;
  }
  std::vector<double> overflow = RackOverflow(input2, phase1.decoded);
  std::vector<int> order(input.reservations.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(),
            [&overflow](int a, int b) { return overflow[a] > overflow[b]; });
  std::vector<int> subset;
  size_t max_take = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(static_cast<double>(input.reservations.size()) *
                                       config_.phase2_reservation_percent / 100.0)));
  for (int r : order) {
    if (subset.size() >= max_take || overflow[static_cast<size_t>(r)] <= 1e-9) {
      break;
    }
    subset.push_back(r);
  }
  double ras_build2 = util::MonotonicSeconds() - t0;

  if (!subset.empty()) {
    std::unordered_set<ReservationId> subset_ids;
    for (int r : subset) {
      subset_ids.insert(input.reservations[static_cast<size_t>(r)].id);
    }
    ClassFilter filter;
    filter.reservations = &subset_ids;
    t0 = util::MonotonicSeconds();
    std::vector<EquivalenceClass> classes2 =
        BuildEquivalenceClasses(input2, Scope::kRack, filter);
    ras_build2 += util::MonotonicSeconds() - t0;

    // Respect the assignment-variable budget: shrink the subset if a crude
    // upper bound (classes x subset reservations) exceeds it.
    while (subset.size() > 1 &&
           classes2.size() * subset.size() > config_.phase2_max_assignment_vars) {
      subset.pop_back();
      subset_ids.erase(input.reservations[static_cast<size_t>(order[subset.size()])].id);
      classes2 = BuildEquivalenceClasses(input2, Scope::kRack, filter);
    }

    PhaseOutcome phase2 = RunPhase(input2, classes2, /*include_rack_spread=*/true, subset,
                                   config_.phase2_mip, ras_build2, /*phase=*/2);
    stats.phase2 = phase2.stats;

    // Merge: phase-2 targets override phase-1 for the servers it touched.
    // Ordered map: the merged target list comes straight out of iteration
    // order, already sorted by server id.
    std::map<ServerId, ReservationId> merged;
    for (const auto& [server, res] : final_targets) {
      merged[server] = res;
    }
    for (const auto& [server, res] : phase2.decoded.targets) {
      merged[server] = res;
    }
    final_targets.assign(merged.begin(), merged.end());
  }

  // ---- Final accounting against the original snapshot ----
  for (const auto& [server, res] : final_targets) {
    const ServerSolveState& before = input.servers[server];
    if (before.current != res) {
      ++stats.moves_total;
      (before.in_use ? stats.moves_in_use : stats.moves_idle)++;
    }
  }
  stats.total_shortfall_rru = ComputeShortfall(input, final_targets);
  stats.total_seconds = util::MonotonicSeconds() - start;
  SummarizeReuse(stats);
  RecordSolveMetrics(stats);

  if (decoded_out != nullptr) {
    decoded_out->targets = std::move(final_targets);
    decoded_out->moves_total = stats.moves_total;
    decoded_out->moves_in_use = stats.moves_in_use;
    decoded_out->moves_idle = stats.moves_idle;
  }
  return stats;
}

Result<SolveStats> AsyncSolver::SolveSharded(const SolveInput& input,
                                             DecodedAssignment* decoded_out, SolveMode mode,
                                             int shard_count) {
  obs::SpanScope fanout_span(obs::Tracer::Default(), "shard_fanout");
  fanout_span.set_value(shard_count);
  double start = util::MonotonicSeconds();
  ShardPlanOptions plan_options;
  plan_options.shard_count = shard_count;
  plan_options.seed = config_.shard_seed;
  ShardPlan plan = PlanShards(*input.topology, plan_options);
  ShardDemand demand = SplitDemand(input, plan);

  // Each shard runs this solver's monolithic path on its sub-input.
  // shard_count = 1 terminates the recursion; solver_threads = 1 keeps every
  // per-shard solve serial and deterministic — the shards themselves are the
  // parallelism axis.
  SolverConfig sub_config = config_;
  sub_config.shard_count = 1;
  sub_config.solver_threads = 1;

  // Persistent per-shard solvers: shard k's sub-solver (and the resolve cache
  // inside it) survives across rounds while the plan signature holds, so a
  // shard's warm state always meets the same shard's next sub-input
  // (incumbent affinity — the plan itself is deterministic in the seed and
  // topology, so shard k covers the same racks round over round). Any plan
  // change redraws shard boundaries and orphans all warm state at once.
  const bool plan_changed =
      shard_plan_count_ != shard_count || shard_plan_seed_ != config_.shard_seed ||
      shard_plan_topology_ != input.topology || shard_plan_servers_ != input.servers.size();
  if (plan_changed) {
    shard_solvers_.clear();
    shard_plan_count_ = shard_count;
    shard_plan_seed_ = config_.shard_seed;
    shard_plan_topology_ = input.topology;
    shard_plan_servers_ = input.servers.size();
  }
  // Created serially before the fan-out: pool workers only ever read the map.
  for (int shard = 0; shard < shard_count; ++shard) {
    std::unique_ptr<AsyncSolver>& slot = shard_solvers_[shard];
    if (slot == nullptr) {
      slot = std::make_unique<AsyncSolver>(sub_config);
      slot->set_resolve_shard(shard);
    } else {
      slot->mutable_config() = sub_config;
    }
  }
  ShardSolveFn solve_shard = [this, mode](int shard, const SolveInput& shard_input,
                                          DecodedAssignment* decoded) {
    return shard_solvers_.at(shard)->SolveSnapshot(shard_input, decoded, mode);
  };
  ShardSolveOptions solve_options;
  solve_options.threads = config_.shard_threads;
  ShardSolveOutcome outcome = SolveShards(input, plan, demand, solve_shard, solve_options);
  if (!outcome.status.ok()) {
    return outcome.status;
  }
  if (outcome.aggregate.failed_shards > 0) {
    RAS_LOG(kWarning) << outcome.aggregate.failed_shards << "/" << shard_count
                      << " shards failed; their servers keep snapshot bindings pending repair";
  }

  SolveStats stats = outcome.aggregate;
  stats.shard_count = shard_count;
  SummarizeReuse(stats);

  // Stitch repair: rounding losses and shard-local infeasibilities are fixed
  // region-wide, across shard boundaries.
  StitchRepairOptions repair_options;
  repair_options.max_moves = config_.shard_repair_max_moves;
  // Spread rebalance uses the same Ψ_F threshold the model charges beta
  // against, so repair moves pay down exactly the penalty the merge created.
  repair_options.msb_spread_fraction =
      config_.msb_alpha_factor / static_cast<double>(input.topology->num_msbs());
  repair_options.min_spread_threshold_rru = config_.min_spread_threshold_rru;
  StitchRepairStats repair = RepairShortfalls(input, outcome.merged.targets, repair_options);
  stats.repair_moves = repair.moves();
  stats.repair_shortfall_before_rru = repair.shortfall_before_rru;

  for (const auto& [server, res] : outcome.merged.targets) {
    const ServerSolveState& before = input.servers[server];
    if (before.current != res) {
      ++stats.moves_total;
      (before.in_use ? stats.moves_in_use : stats.moves_idle)++;
    }
  }
  stats.total_shortfall_rru = ComputeShortfall(input, outcome.merged.targets);
  stats.total_seconds = util::MonotonicSeconds() - start;
  RecordSolveMetrics(stats);
  {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    static obs::Counter& failed =
        reg.counter("ras_shard_failed_total", "Shard solves that returned an error.");
    static obs::Counter& repair =
        reg.counter("ras_shard_repair_moves_total", "Moves made by cross-shard stitch repair.");
    failed.Add(static_cast<int64_t>(stats.failed_shards));
    repair.Add(static_cast<int64_t>(stats.repair_moves));
  }

  if (decoded_out != nullptr) {
    decoded_out->targets = std::move(outcome.merged.targets);
    decoded_out->moves_total = stats.moves_total;
    decoded_out->moves_in_use = stats.moves_in_use;
    decoded_out->moves_idle = stats.moves_idle;
  }
  return stats;
}

void AsyncSolver::InvalidateResolveCache() {
  resolve_cache_.Invalidate();
  for (auto& [shard, solver] : shard_solvers_) {
    solver->InvalidateResolveCache();
  }
}

Result<SolveStats> AsyncSolver::SolveOnce(ResourceBroker& broker,
                                          const ReservationRegistry& registry,
                                          const HardwareCatalog& catalog, SolveMode mode) {
  double t0 = util::MonotonicSeconds();
  SolveInput input = SnapshotSolveInput(broker, registry, catalog);
  double snapshot_s = util::MonotonicSeconds() - t0;

  DecodedAssignment decoded;
  Result<SolveStats> stats = SolveSnapshot(input, &decoded, mode);
  if (!stats.ok()) {
    return stats;
  }
  stats->phase1.timings.ras_build_s += snapshot_s;
  stats->total_seconds += snapshot_s;

  // Persist the binding intent (Figure 6, step 3) — all-or-nothing, so a
  // broker write failure cannot strand a half-applied target set.
  Status persisted = broker.ApplyTargets(decoded.targets);
  if (!persisted.ok()) {
    // The rolled-back broker no longer matches the round the cache just
    // recorded as "previous"; the next round must re-derive from scratch.
    InvalidateResolveCache();
    return persisted;
  }
  return stats;
}

}  // namespace ras
