#include "src/core/resolve_cache.h"

#include <algorithm>

namespace ras {

bool ShiftIncumbentCounts(const ResolveEntry& entry,
                          const std::vector<EquivalenceClass>& classes,
                          std::vector<double>* counts) {
  const BuiltModel& built = entry.built;
  if (entry.counts.size() != built.assignment_vars.size() ||
      built.class_to_vars.size() != classes.size()) {
    return false;
  }
  *counts = entry.counts;
  for (size_t c = 0; c < classes.size(); ++c) {
    const double cls_count = static_cast<double>(classes[c].servers.size());
    double total = 0.0;
    for (int k : built.class_to_vars[c]) {
      double& v = (*counts)[static_cast<size_t>(k)];
      v = std::clamp(v, 0.0, cls_count);
      total += v;
    }
    if (total <= cls_count) {
      continue;
    }
    // The class shrank below what the old incumbent assigned here. Shed the
    // surplus from the class's later reservations first (reverse builder
    // order) — a fixed rule, so the shifted point is the same on every host.
    double surplus = total - cls_count;
    for (auto it = built.class_to_vars[c].rbegin();
         it != built.class_to_vars[c].rend() && surplus > 0.0; ++it) {
      double& v = (*counts)[static_cast<size_t>(*it)];
      const double shed = std::min(v, surplus);
      v -= shed;
      surplus -= shed;
    }
  }
  return true;
}

}  // namespace ras
