// Cross-round resolve cache: the warm state the Async Solver carries from one
// round to the next.
//
// Each entry — keyed by (phase, shard) — remembers the previous round's
// snapshot, equivalence classes, built model, final simplex basis, incumbent
// assignment counts, and proven bound. The next round computes a RoundDelta
// against the cached snapshot and, when the model structure survives
// (RoundDelta::patchable), re-targets the cached model in place
// (PatchRasModel), restarts the root LP from the cached basis, and — when the
// delta is empty-or-trivial and the shifted incumbent revalidates within the
// configured gap — skips the MIP entirely.
//
// Lifetime rules (see DESIGN.md "Incremental re-solve"): the cache lives
// inside an AsyncSolver and survives exactly as long as consecutive healthy
// kFullTwoPhase rounds. Degraded supervisor rungs, faults, broker write
// rollbacks, and durable-control-plane recovery all invalidate it, so every
// recovery path cold-starts.

#ifndef RAS_SRC_CORE_RESOLVE_CACHE_H_
#define RAS_SRC_CORE_RESOLVE_CACHE_H_

#include <map>
#include <utility>
#include <vector>

#include "src/core/model_builder.h"
#include "src/core/round_delta.h"
#include "src/core/solve_input.h"
#include "src/solver/simplex.h"

namespace ras {

struct ResolveEntry {
  bool valid = false;
  // The round this entry was produced by.
  SolveInput input;
  std::vector<EquivalenceClass> classes;
  // The built (and since patched-forward) model for that round's structure.
  BuiltModel built;
  bool include_rack_spread = false;
  std::vector<int> subset;
  // Final incumbent as assignment counts (aligned with
  // built.assignment_vars), its objective, the best proven bound, and how the
  // producing solve terminated (kOptimal vs node-limited kFeasible — a
  // skipped round must report the cached round's true status, not invent an
  // optimality proof).
  std::vector<double> counts;
  double objective = 0.0;
  double best_bound = 0.0;
  MipStatus mip_status = MipStatus::kError;
  // Basis at the round's root LP optimum.
  SimplexBasis root_basis;
};

class ResolveCache {
 public:
  // Entry for a (phase, shard) slot, created invalid on first touch. Phase is
  // 1 or 2; shard is the plan's shard index, or -1 for a monolithic solve.
  ResolveEntry& entry(int phase, int shard) { return entries_[{phase, shard}]; }

  // Drops every entry: the next round of every (phase, shard) is cold.
  void Invalidate() { entries_.clear(); }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::pair<int, int>, ResolveEntry> entries_;
};

// Shifts the cached incumbent through a round delta: re-reads the cached
// assignment counts (index-aligned — requires class structural equality),
// clamps each to the new class size, and deterministically drains classes
// that ended up over-full. The result feeds MakeWarmStart, which rebuilds
// every auxiliary variable consistently, so the shifted point is feasible by
// construction; callers still validate with Model::IsFeasible and fall back
// to the greedy warm start when validation fails. Returns false when the
// cached counts cannot align with the new structure.
bool ShiftIncumbentCounts(const ResolveEntry& entry,
                          const std::vector<EquivalenceClass>& classes,
                          std::vector<double>* counts);

}  // namespace ras

#endif  // RAS_SRC_CORE_RESOLVE_CACHE_H_
