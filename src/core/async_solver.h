// Async Solver (Section 3.5): continuously re-optimizes the whole region's
// server-to-reservation assignment with two-phase MIP solving.
//
// Phase 1 groups servers at MSB granularity (dropping rack goals lets far
// more servers merge into each equivalence class) and solves capacity,
// buffer, MSB-spread, affinity, and stability region-wide. Phase 2 re-solves
// at rack granularity for the subset of reservations with the worst
// rack-level objective, holding everything else fixed.
//
// Each phase is instrumented with the four steps of Figure 8:
//   RAS build -> solver build -> initial state -> MIP.

#ifndef RAS_SRC_CORE_ASYNC_SOLVER_H_
#define RAS_SRC_CORE_ASYNC_SOLVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/broker/resource_broker.h"
#include "src/core/assignment_decoder.h"
#include "src/core/model_builder.h"
#include "src/core/reservation.h"
#include "src/core/resolve_cache.h"
#include "src/core/solve_input.h"

namespace ras {

// How much of the solve pipeline to run. The degraded modes are the middle
// rungs of the supervisor's ladder: each trades solution quality for a
// cheaper, more reliable answer when the full solve keeps failing.
enum class SolveMode : uint8_t {
  kFullTwoPhase = 0,  // Phase 1 + rack-granular phase 2 (the normal solve).
  kPhase1Only,        // MSB-granular MIP only; skip the phase-2 refinement.
  kIncumbentOnly,     // No MIP at all: the greedy spread-aware initial
                      // assignment (RAS's documented timeout fallback).
};

const char* SolveModeName(SolveMode mode);

struct StepTimings {
  double ras_build_s = 0.0;
  double solver_build_s = 0.0;
  double initial_state_s = 0.0;
  double mip_s = 0.0;

  double total() const { return ras_build_s + solver_build_s + initial_state_s + mip_s; }
  double setup() const { return ras_build_s + solver_build_s + initial_state_s; }
};

struct PhaseStats {
  StepTimings timings;
  size_t assignment_variables = 0;
  size_t model_rows = 0;
  size_t model_variables = 0;
  size_t memory_bytes = 0;
  MipStatus mip_status = MipStatus::kError;
  double objective = 0.0;
  double best_bound = 0.0;
  double warm_start_objective = 0.0;
  int64_t nodes = 0;
  bool ran = false;

  // Cross-round reuse telemetry (resolve cache, SolverConfig::
  // incremental_resolve). delta_servers is the server-state delta against the
  // cached round, or -1 when there was no cached round to diff against.
  bool model_patched = false;
  bool basis_reused = false;
  bool solve_skipped = false;
  int delta_servers = -1;
  // Solver-layer re-optimization telemetry (presolve + dual simplex), summed
  // over every LP the phase ran: node LPs served by the dual kernel, the
  // dual pivots they took, and rows presolve removed from cold solves.
  int64_t dual_resolves = 0;
  int64_t dual_iterations = 0;
  int64_t presolve_rows_removed = 0;
};

struct SolveStats {
  PhaseStats phase1;
  PhaseStats phase2;
  size_t moves_total = 0;
  size_t moves_in_use = 0;
  size_t moves_idle = 0;
  // Capacity shortfall (softened-constraint residue) after the solve, RRUs.
  double total_shortfall_rru = 0.0;
  double total_seconds = 0.0;

  // Shard decomposition accounting (src/shard). shard_count == 1 is the
  // monolithic solve; then the fields below stay zero.
  int shard_count = 1;
  size_t failed_shards = 0;
  size_t repair_moves = 0;
  double repair_shortfall_before_rru = 0.0;

  // Round-level reuse summary: the booleans hold when every phase (and, when
  // sharded, every shard) that ran reused that way; delta_servers is phase
  // 1's region-wide delta (summed across shards), -1 on a cold round.
  bool model_patched = false;
  bool basis_reused = false;
  bool solve_skipped = false;
  int delta_servers = -1;
  // Solver-layer re-optimization totals summed across phases (and shards).
  int64_t dual_resolves = 0;
  int64_t dual_iterations = 0;
  int64_t presolve_rows_removed = 0;
};

class AsyncSolver {
 public:
  explicit AsyncSolver(SolverConfig config = SolverConfig()) : config_(std::move(config)) {}

  const SolverConfig& config() const { return config_; }
  SolverConfig& mutable_config() { return config_; }

  // One full solve (Figure 6, steps 2-3): snapshot broker + registry, run the
  // two phases, and persist the resulting targets to the broker. The persist
  // is all-or-nothing: a failed broker write rolls the batch back and the
  // error propagates with the broker unchanged.
  Result<SolveStats> SolveOnce(ResourceBroker& broker, const ReservationRegistry& registry,
                               const HardwareCatalog& catalog,
                               SolveMode mode = SolveMode::kFullTwoPhase);

  // Lower-level entry point over a prepared snapshot; used by benches that
  // need the input held fixed. Fills `targets` instead of writing the broker.
  Result<SolveStats> SolveSnapshot(const SolveInput& input, DecodedAssignment* decoded,
                                   SolveMode mode = SolveMode::kFullTwoPhase);

  // Fault-injection hook, consulted at the top of every SolveSnapshot with
  // the mode about to run. A non-OK return aborts the solve with that status
  // — how the fault library simulates solver timeouts and crashes without
  // touching solver internals.
  using FaultHook = std::function<Status(SolveMode)>;
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // Drops every cached (phase, shard) resolve entry — this solver's and its
  // persistent per-shard sub-solvers' — so the next round cold-starts.
  // Called internally on every path that breaks round-over-round continuity
  // (degraded solve modes, injected faults, failed broker writes); exposed so
  // the supervisor and recovery drills can force the same on external
  // evidence of divergence.
  void InvalidateResolveCache();

  const ResolveCache& resolve_cache() const { return resolve_cache_; }
  // Tags this solver's cache entries with the shard index they serve
  // (ShardSolveCoordinator affinity); -1 (default) is the monolithic solve.
  void set_resolve_shard(int shard) { resolve_shard_ = shard; }

 private:
  // Shard-decomposed solve (src/shard): plan -> split -> per-shard solves ->
  // merge -> stitch repair. Entered from SolveSnapshot when the configured
  // shard count resolves to K > 1; each shard runs this solver's monolithic
  // path on its sub-input.
  Result<SolveStats> SolveSharded(const SolveInput& input, DecodedAssignment* decoded_out,
                                  SolveMode mode, int shard_count);

  // Runs one phase over the given classes; returns the decoded assignment.
  struct PhaseOutcome {
    PhaseStats stats;
    DecodedAssignment decoded;
    double shortfall_rru = 0.0;
  };
  // `phase` selects the resolve-cache slot (1 or 2); 0 disables caching for
  // this call (degraded modes must not leave warm state behind).
  PhaseOutcome RunPhase(const SolveInput& input, const std::vector<EquivalenceClass>& classes,
                        bool include_rack_spread, const std::vector<int>& subset,
                        const MipOptions& mip_options, double snapshot_seconds, int phase);

  // Rack-overflow score per reservation index, computed from a decoded
  // phase-1 assignment; drives phase-2 subset selection.
  std::vector<double> RackOverflow(const SolveInput& input, const DecodedAssignment& decoded);

  SolverConfig config_;
  FaultHook fault_hook_;

  // Cross-round warm state (Figure 8: the build and root-LP steps this
  // avoids repaying every round). Keyed (phase, resolve_shard_).
  ResolveCache resolve_cache_;
  int resolve_shard_ = -1;

  // Persistent per-shard sub-solvers: each shard index keeps its own
  // AsyncSolver (and thus its own resolve cache) across rounds, so warm state
  // follows the shard it belongs to (incumbent affinity). Rebuilt whenever
  // the plan signature below changes.
  std::map<int, std::unique_ptr<AsyncSolver>> shard_solvers_;
  int shard_plan_count_ = 0;
  uint64_t shard_plan_seed_ = 0;
  const RegionTopology* shard_plan_topology_ = nullptr;
  size_t shard_plan_servers_ = 0;
};

}  // namespace ras

#endif  // RAS_SRC_CORE_ASYNC_SOLVER_H_
