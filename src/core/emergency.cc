#include "src/core/emergency.h"

namespace ras {

EmergencyGrant GrantImmediateCapacity(ResourceBroker& broker, const ReservationRegistry& registry,
                                      ReservationId reservation, size_t count) {
  EmergencyGrant grant;
  const ReservationSpec* spec = registry.Find(reservation);
  if (spec == nullptr || count == 0) {
    return grant;
  }
  const RegionTopology& topo = broker.topology();

  // Free pool first.
  std::vector<ServerId> pool = broker.ServersInReservation(kUnassigned);
  for (ServerId server : pool) {
    if (grant.servers_granted >= count) {
      return grant;
    }
    const ServerRecord& rec = broker.record(server);
    if (IsUnplanned(rec.unavailability)) {
      continue;
    }
    if (spec->ValueOfType(topo.server(server).type) <= 0.0) {
      continue;
    }
    broker.SetCurrent(server, reservation);
    broker.SetTarget(server, reservation);
    ++grant.servers_granted;
    ++grant.from_free_pool;
  }

  // Then elastic-loaned servers: preempt the opportunistic workload and press
  // the server into service. This borrows from the loaned-out portion of the
  // shared buffers — a deliberate guarantee violation that future solves
  // replenish (the paper: "future solves will correct any placement
  // guarantees that were broken by this process").
  for (const ReservationSpec* elastic : registry.AllElastic()) {
    // Copy: SetCurrent mutates the membership index.
    std::vector<ServerId> members = broker.ServersInReservation(elastic->id);
    for (ServerId server : members) {
      if (grant.servers_granted >= count) {
        return grant;
      }
      const ServerRecord& rec = broker.record(server);
      if (!rec.elastic_loan || IsUnplanned(rec.unavailability)) {
        continue;
      }
      if (spec->ValueOfType(topo.server(server).type) <= 0.0) {
        continue;
      }
      broker.SetElasticLoan(server, kUnassigned, false);
      broker.SetCurrent(server, reservation);
      broker.SetTarget(server, reservation);
      ++grant.servers_granted;
      ++grant.from_elastic;
    }
  }
  return grant;
}

}  // namespace ras
