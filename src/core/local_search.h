// Local-search assignment backend.
//
// The paper (Section 6) describes ReBalancer, the Facebook-internal library
// both RAS and Shard Manager use to formulate constrained optimization:
// "ReBalancer can choose different backend solvers... a MIP solver for RAS,
// but a local-search-based solver for Shard Manager because Shard Manager
// needs to perform near-realtime allocation in seconds."
//
// This is that alternative backend, specialized to the RAS assignment
// structure: single-unit moves of equivalence-class servers between
// reservations (or the free pool), greedily accepted on exact incremental
// objective deltas over the same cost model the MIP optimizes (Expressions
// 1-7 plus the repo's anti-hoarding term). It trades solution quality for
// strictly bounded runtime — use it where solve latency matters more than
// the last few percent of objective (AsyncSolver exposes it via
// SolverConfig::backend).

#ifndef RAS_SRC_CORE_LOCAL_SEARCH_H_
#define RAS_SRC_CORE_LOCAL_SEARCH_H_

#include <cstdint>
#include <vector>

#include "src/core/model_builder.h"
#include "src/core/solve_input.h"

namespace ras {

struct LocalSearchOptions {
  double time_limit_seconds = 3.0;
  int64_t max_proposals = 1000000;
  // Consecutive rejected proposals before giving up early. Coupled moves
  // (specific source/destination pairs) are rare draws, so the stall limit
  // must be large relative to the proposal space.
  int64_t stall_limit = 150000;
  uint64_t seed = 1;
};

struct LocalSearchResult {
  std::vector<double> counts;  // Aligned with built.assignment_vars.
  double initial_objective = 0.0;
  double final_objective = 0.0;
  int64_t proposals = 0;
  int64_t accepted = 0;
  double seconds = 0.0;
};

// Improves `initial_counts` (must respect class supplies; typically
// BuildInitialCounts output). The returned counts also respect supplies; the
// objective values are the built model's objective at the corresponding
// MakeWarmStart points.
LocalSearchResult LocalSearchOptimize(const SolveInput& input,
                                      const std::vector<EquivalenceClass>& classes,
                                      const BuiltModel& built,
                                      const std::vector<double>& initial_counts,
                                      const LocalSearchOptions& options = LocalSearchOptions());

}  // namespace ras

#endif  // RAS_SRC_CORE_LOCAL_SEARCH_H_
