// RAS MIP model construction (Section 3.5.3).
//
// Builds, from equivalence classes, the model
//
//   min   sum Ms * max(0, X - x)                      (1) stability
//       + beta * sum_rack max(0, rack RRU - aK*C)     (2) rack spread
//       + beta * sum_msb  max(0, msb RRU  - aF*C)     (3) MSB spread
//       + tau  * sum_r max_msb(msb RRU)               (4) buffer minimization
//   s.t. sum_r n[c][r] <= |class c|                   (5) assignment
//        sum V*n - max_msb(...) >= C_r                (6) embedded buffer
//        |dc share - A_{r,dc}| <= theta               (7) network affinity
//
// max() terms are linearized with auxiliary continuous variables. Following
// Section 3.5.1, constraints (6) and (7) are *softened* with high-priority
// slack variables so the model is always feasible; the slacks' costs dominate
// every ordinary objective, so the solver fixes as many constraints as it
// can before optimizing anything else.

#ifndef RAS_SRC_CORE_MODEL_BUILDER_H_
#define RAS_SRC_CORE_MODEL_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/core/solve_input.h"
#include "src/solver/mip.h"
#include "src/solver/model.h"

namespace ras {

// Which optimization backend the Async Solver uses (Section 6: ReBalancer
// picks a MIP solver for RAS and local search for near-realtime clients).
enum class SolverBackend {
  kMip,          // LP-relaxation branch-and-bound (the paper's choice for RAS).
  kLocalSearch,  // Greedy single-unit moves; bounded seconds, lower quality.
};

struct SolverConfig {
  SolverBackend backend = SolverBackend::kMip;
  // Expression (1): Ms. In-use servers cost 10x idle ones to move, which is
  // why ~10x more unused servers move in practice (Figure 16).
  double move_cost_in_use = 1000.0;
  double move_cost_idle = 100.0;
  // Small per-server cost for claiming a server a reservation does not
  // currently hold (host cleanup + OS reconfiguration). Keeps solutions tight
  // — without it, over-allocating free servers is objective-neutral.
  double acquire_cost = 1.0;
  // Expression (2)/(3): beta, per RRU above the spread threshold.
  double spread_penalty_beta = 20000.0;
  // Expression (4): tau, per RRU of correlated-failure buffer.
  double buffer_cost_tau = 3000.0;
  // Softened-constraint slack costs; must dominate all of the above.
  double affinity_soften_cost = 2e5;
  double capacity_soften_cost = 1e6;
  // Storage quorum-spread cap (max_msb_fraction_hard): near-hard.
  double quorum_soften_cost = 5e5;
  // Anti-hoarding: per-RRU cost of holding capacity beyond
  // (1 + hoarding_allowance) * C_r + buffer. Set above move_cost_idle so idle
  // surplus is shed back to the free pool rather than stranded — the
  // fungibility RAS exists to provide. Below move_cost_in_use, so shedding
  // never preempts running containers by itself.
  double hoarding_cost = 300.0;
  double hoarding_allowance = 0.10;
  // Default spread thresholds as multiples of the perfectly-uniform share:
  // alpha_F = msb_alpha_factor / #MSBs, alpha_K = rack_alpha_factor / #racks.
  double msb_alpha_factor = 1.3;
  double rack_alpha_factor = 2.0;
  // Floor on spread thresholds (in RRUs): tiny reservations (e.g. per-type
  // shared buffers) would otherwise pay junk penalties for placing even a
  // single server anywhere.
  double min_spread_threshold_rru = 4.0;

  // Phase-2 selection (Section 3.5.2): take the reservations with the worst
  // rack-level objective until either this percentage is covered or the
  // assignment-variable budget is reached.
  double phase2_reservation_percent = 10.0;
  size_t phase2_max_assignment_vars = 200000;

  // --- Shard decomposition (src/shard, paper §3.5.2) ---
  // 1 (default) runs the monolithic region-wide solve, bit-for-bit the
  // pre-shard path. K > 1 partitions the region into K rack-complete shards
  // (seeded, deterministic), splits every reservation's demand across them
  // proportionally to usable capacity, solves the shards independently, and
  // stitches the results with a bounded cross-shard repair. 0 picks K
  // automatically from the fleet size (AutoShardCount).
  int shard_count = 1;
  uint64_t shard_seed = 0x5A2D;
  // Fan-out threads for the shard solves; 0 = min(K, hardware concurrency).
  int shard_threads = 0;
  // Move budget for the post-merge StitchRepair pass.
  size_t shard_repair_max_moves = 2000;

  // --- Cross-round incremental re-solve (src/core/resolve_cache.h) ---
  // Reuses the previous round's model (patched in place), root simplex basis,
  // and incumbent when consecutive snapshots are structurally equal. With the
  // two sub-knobs at their defaults the reuse paths only short-circuit work a
  // cold solve would provably repeat, so disabling this changes timings, not
  // targets.
  bool incremental_resolve = true;
  // A round whose server delta (state changes + adds + removes) is at most
  // this many servers may skip the MIP entirely when the shifted cached
  // incumbent revalidates within the phase's absolute gap. 0 (default)
  // restricts the skip to unchanged rounds, where the cached incumbent is
  // exactly what the deterministic cold solve would recompute. Values > 0
  // trade exactness for speed: results stay feasible and within the gap of
  // the cached bound, but need not be bit-identical to a cold solve.
  int skip_solve_max_delta_servers = 0;
  // Strict parity (default): the cached basis is only used for a separate
  // root-bound probe whose fired outcome equals the cold serial root prune;
  // when the probe does not fire, the MIP runs exactly as if cold. false
  // additionally seeds that fallback MIP's root LP from the cached basis —
  // faster, but alternate LP optima can steer branching differently, so
  // targets may (validly) differ from a cold solve.
  bool resolve_strict_parity = true;

  // Branch-and-bound workers for both MIP phases (MipOptions::threads).
  // 1 = the deterministic serial solver; the SolverSupervisor also drops back
  // to 1 on degraded ladder rungs so retries after a failure are
  // reproducible. Raising either phase's MipOptions::threads directly wins
  // over this knob.
  int solver_threads = 1;

  // Rejected-proposal patience for the local-search polish of the greedy
  // warm start (LocalSearchOptions::stall_limit). The greedy start is
  // already move-minimal in the RAS cost structure, so polish acceptance is
  // rare; the library default (150k proposals) burns tens of milliseconds
  // per phase re-proving that. Applied identically to every pipeline (cold
  // and incremental), so it shifts timings, never parity.
  int64_t polish_stall_limit = 4000;

  MipOptions phase1_mip;
  MipOptions phase2_mip;

  SolverConfig() {
    // The LP-rounding heuristic finds near-optimal incumbents within a few
    // nodes (bench/fig09: the 24-node early stop matches a 200-node
    // reference in ~100% of trials), so node budgets stay small.
    phase1_mip.time_limit_seconds = 20.0;
    phase1_mip.max_nodes = 24;
    phase2_mip.time_limit_seconds = 10.0;
    phase2_mip.max_nodes = 16;
    // Gaps below half an idle server move are operationally meaningless;
    // pruning at this tolerance saves most of the branch-and-bound tail.
    phase1_mip.absolute_gap = move_cost_idle / 2;
    phase2_mip.absolute_gap = move_cost_idle / 2;
    // stall_node_limit stays at the library default (0 = disabled): the RAS
    // LP relaxation keeps a structural integer-ceil gap (the tau-weighted
    // buffer terms) to any incumbent, so an aggressive stall cutoff can
    // freeze a mid-quality incumbent that more patience would improve.
    // Latency-sensitive callers (the round-resolve bench) opt in per config,
    // setting it identically on both pipelines so targets stay comparable.
  }
};

// A built model plus the bookkeeping needed to decode a solution.
struct BuiltModel {
  Model model;

  // Assignment variables: n_vars[k] is the k-th (class, reservation) pair.
  struct AssignmentVar {
    VarId var;
    int class_index;
    int reservation_index;
  };
  std::vector<AssignmentVar> assignment_vars;
  // Per class: indices into assignment_vars (for decode and warm start).
  std::vector<std::vector<int>> class_to_vars;
  // Per reservation index: capacity shortfall slack (kNoVar if the
  // reservation is outside the subset).
  std::vector<VarId> shortfall_vars;
  // Per reservation index: the max-MSB buffer variable m_r, or kNoVar.
  std::vector<VarId> buffer_vars;
  // Per reservation index: hoarding overflow variable, or kNoVar, and the
  // corresponding RRU limit (1 + allowance) * C_r.
  std::vector<VarId> hoard_vars;
  std::vector<double> hoard_limits;
  // X values (initial counts) aligned with assignment_vars.
  std::vector<double> initial_counts;
  // Move-out variables o (Expression 1), aligned with assignment_vars; kNoVar
  // where X == 0.
  std::vector<VarId> move_vars;

  // Bookkeeping for warm-start construction.
  struct SpreadTerm {
    VarId var;  // Overflow variable w >= (group RRU) - threshold.
    int reservation_index;
    uint32_t group;
    double threshold;
    RowId row = -1;  // sum_G V*n - w <= threshold; patched when C_r resizes.
  };
  std::vector<SpreadTerm> msb_spread_terms;
  std::vector<SpreadTerm> rack_spread_terms;
  struct AffinityTerm {
    VarId lo_slack;
    VarId hi_slack;
    int reservation_index;
    DatacenterId dc;
    double lo;  // (A - theta) * C_r
    double hi;  // (A + theta) * C_r
    RowId lo_row = -1;
    RowId hi_row = -1;
  };
  std::vector<AffinityTerm> affinity_terms;
  // Storage quorum caps: per (reservation, MSB) slack above the hard limit.
  struct QuorumTerm {
    VarId slack;
    int reservation_index;
    uint32_t group;  // MSB.
    double limit;    // max_msb_fraction_hard * C_r.
    RowId row = -1;
  };
  std::vector<QuorumTerm> quorum_terms;

  // Row bookkeeping for in-place patching (PatchRasModel): every row whose
  // bounds depend on class counts or reservation sizes. Rows not present in
  // this build (no move-out, reservation outside the subset) hold kNoRow.
  std::vector<RowId> supply_rows;    // Per class: sum_r n <= |class|.
  std::vector<RowId> move_rows;      // Aligned with assignment_vars: n + o >= X.
  std::vector<RowId> capacity_rows;  // Per reservation index: Expression (6).
  std::vector<RowId> hoard_rows;     // Per reservation index.

  size_t num_assignment_variables() const { return assignment_vars.size(); }
  // Model-build memory (variables, rows, nonzeros, decode bookkeeping):
  // linear in the number of assignment variables, the quantity comparable to
  // the paper's Figure 11.
  size_t ModelMemoryBytes() const;
  // Full working-set estimate including the simplex's dense basis inverse
  // (quadratic in rows — an artifact of this repo's from-scratch LP engine;
  // commercial solvers keep a sparse factorization instead).
  size_t EstimatedMemoryBytes() const;
};

inline constexpr VarId kNoVar = -1;
inline constexpr RowId kNoRow = -1;

// Builds the model over `classes`.
//  - granularity: the location scope the classes were built at.
//  - include_rack_spread: phase 2 adds Expression (2); requires rack classes.
//  - reservation_subset: when non-empty (phase 2), capacity/spread/buffer
//    constraints are emitted only for these reservation indices; classes are
//    expected to be pre-filtered to those reservations' servers + free pool.
BuiltModel BuildRasModel(const SolveInput& input, const std::vector<EquivalenceClass>& classes,
                         const SolverConfig& config, bool include_rack_spread,
                         const std::vector<int>& reservation_subset = {});

// Computes the auxiliary-variable values (move-outs, spread overflows, buffer
// max, slacks) consistent with the given assignment counts, producing a fully
// feasible warm-start vector for the MIP ("Initial State" step, Figure 8).
// `counts` is aligned with built.assignment_vars.
std::vector<double> MakeWarmStart(const SolveInput& input,
                                  const std::vector<EquivalenceClass>& classes,
                                  const BuiltModel& built, const std::vector<double>& counts);

// In-place re-targets `built` (previously produced by BuildRasModel with the
// same config / include_rack_spread / reservation_subset) at a new round's
// (input, classes), without touching the constraint matrix: class-count
// supply and move bounds, initial counts, capacity / hoard / spread / quorum
// / affinity row bounds and thresholds — all through the Model's
// cache-preserving Update mutators, so the compressed-column cache built for
// the previous round stays valid. Requires structural equality between the
// old and new rounds (same class keys per index, same reservation layout —
// what RoundDelta::classes_structurally_equal certifies); the walk re-derives
// the builder's variable/row sequence and returns false, leaving `built`
// unusable for this round, on any mismatch. On success the patched model is
// field-for-field identical to a fresh BuildRasModel of the new round.
bool PatchRasModel(BuiltModel& built, const SolveInput& input,
                   const std::vector<EquivalenceClass>& classes, const SolverConfig& config,
                   bool include_rack_spread, const std::vector<int>& reservation_subset = {});

}  // namespace ras

#endif  // RAS_SRC_CORE_MODEL_BUILDER_H_
