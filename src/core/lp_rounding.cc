#include "src/core/lp_rounding.h"

#include <algorithm>
#include <cmath>

#include "src/core/initial_assignment.h"

namespace ras {

MipHeuristic MakeLpRoundingHeuristic(const SolveInput& input,
                                     const std::vector<EquivalenceClass>& classes,
                                     const BuiltModel& built) {
  return [&input, &classes, &built](const Model& model, const std::vector<double>& lp_x,
                                    std::vector<double>* candidate) {
    (void)model;
    std::vector<double> counts(built.assignment_vars.size(), 0.0);

    // Largest-remainder rounding per class: floors first, then hand the
    // class's remaining rounded units to the largest fractions. The per-class
    // total matches round(sum of LP values) capped at the class size, so
    // supply rows hold by construction.
    for (size_t c = 0; c < classes.size(); ++c) {
      const auto& var_indices = built.class_to_vars[c];
      double lp_total = 0.0;
      for (int k : var_indices) {
        lp_total += std::max(0.0, lp_x[built.assignment_vars[static_cast<size_t>(k)].var]);
      }
      long target =
          std::min<long>(std::lround(lp_total), static_cast<long>(classes[c].count()));
      long used = 0;
      std::vector<std::pair<double, int>> fractions;  // (fraction, var index k).
      for (int k : var_indices) {
        double v = std::max(0.0, lp_x[built.assignment_vars[static_cast<size_t>(k)].var]);
        double fl = std::floor(v);
        counts[static_cast<size_t>(k)] = fl;
        used += static_cast<long>(fl);
        fractions.push_back({v - fl, k});
      }
      std::sort(fractions.begin(), fractions.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (const auto& [frac, k] : fractions) {
        if (used >= target) {
          break;
        }
        counts[static_cast<size_t>(k)] += 1.0;
        ++used;
      }
    }

    // Repair the residual capacity deficits and rebuild auxiliaries.
    counts = RepairCounts(input, classes, built, std::move(counts));
    *candidate = MakeWarmStart(input, classes, built, counts);
    return true;
  };
}

}  // namespace ras
