// Relative resource units (Section 3.1).
//
// RRUs decouple capacity requests from physical hardware: a reservation asks
// for an aggregate amount of RRUs, and each server contributes an amount that
// reflects the requesting service's throughput on that SKU. For a service
// whose relative value does not scale with newer generations (DataStore in
// Figure 3), every generation contributes near-identical RRUs; for Web, a
// generation-3 server is worth 1.82x a generation-1 server.

#ifndef RAS_SRC_CORE_RRU_H_
#define RAS_SRC_CORE_RRU_H_

#include <vector>

#include "src/fleet/service_profile.h"
#include "src/topology/hardware.h"

namespace ras {

// Builds V_{s,r} for a service: per hardware type, the service's relative
// value on that generation times the SKU's baseline compute units. Types not
// in `acceptable_types` get 0; an empty list accepts every type the profile
// values (relative value > 0 on its generation and not excluded).
std::vector<double> BuildRruVector(const HardwareCatalog& catalog, const ServiceProfile& profile,
                                   const std::vector<HardwareTypeId>& acceptable_types = {});

// Count-based request (Section 3.1, "smaller services can use a simple
// count-based approach"): 1 RRU per server of any acceptable type.
std::vector<double> BuildCountRruVector(const HardwareCatalog& catalog,
                                        const std::vector<HardwareTypeId>& acceptable_types);

// Total RRUs a set of per-type server counts contributes under `rru_per_type`.
double TotalRru(const std::vector<double>& rru_per_type, const std::vector<size_t>& type_counts);

}  // namespace ras

#endif  // RAS_SRC_CORE_RRU_H_
