// LP-guided rounding heuristic for the RAS MIP.
//
// Installed into the branch-and-bound via MipOptions::heuristic. For each
// equivalence class (one supply row), the fractional LP assignment counts are
// rounded with the largest-remainder method — per-class totals are preserved
// exactly, so no supply row is ever violated. Residual capacity deficits
// (rounding can shave a fraction of a server off a reservation here and
// there) are then repaired by the same spread-first greedy used for the
// initial state, and auxiliary variables are recomputed to produce a fully
// feasible candidate. Generic fix-and-solve rounding scatters capacity
// because it rounds each variable independently; this one understands the
// assignment structure.

#ifndef RAS_SRC_CORE_LP_ROUNDING_H_
#define RAS_SRC_CORE_LP_ROUNDING_H_

#include "src/core/model_builder.h"
#include "src/core/solve_input.h"
#include "src/solver/mip.h"

namespace ras {

// Returns a heuristic bound to `input`, `classes` and `built`; all three must
// outlive the MipSolver::Solve call it is installed into.
MipHeuristic MakeLpRoundingHeuristic(const SolveInput& input,
                                     const std::vector<EquivalenceClass>& classes,
                                     const BuiltModel& built);

}  // namespace ras

#endif  // RAS_SRC_CORE_LP_ROUNDING_H_
