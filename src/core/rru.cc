#include "src/core/rru.h"

#include <algorithm>
#include <cassert>

namespace ras {

std::vector<double> BuildRruVector(const HardwareCatalog& catalog, const ServiceProfile& profile,
                                   const std::vector<HardwareTypeId>& acceptable_types) {
  std::vector<double> rru(catalog.size(), 0.0);
  for (size_t t = 0; t < catalog.size(); ++t) {
    HardwareTypeId type_id = static_cast<HardwareTypeId>(t);
    if (!acceptable_types.empty() &&
        std::find(acceptable_types.begin(), acceptable_types.end(), type_id) ==
            acceptable_types.end()) {
      continue;
    }
    const HardwareType& type = catalog.type(type_id);
    double relative = profile.ValueOf(type);
    if (relative <= 0.0) {
      continue;
    }
    rru[t] = relative * type.compute_units;
  }
  return rru;
}

std::vector<double> BuildCountRruVector(const HardwareCatalog& catalog,
                                        const std::vector<HardwareTypeId>& acceptable_types) {
  std::vector<double> rru(catalog.size(), 0.0);
  for (HardwareTypeId t : acceptable_types) {
    assert(t < catalog.size());
    rru[t] = 1.0;
  }
  return rru;
}

double TotalRru(const std::vector<double>& rru_per_type, const std::vector<size_t>& type_counts) {
  assert(rru_per_type.size() == type_counts.size());
  double total = 0.0;
  for (size_t t = 0; t < rru_per_type.size(); ++t) {
    total += rru_per_type[t] * static_cast<double>(type_counts[t]);
  }
  return total;
}

}  // namespace ras
