// Online Mover (Figure 6, step 4): executes the Async Solver's decisions and
// handles the fast paths that cannot wait for a solve —
//
//  - reconciling each server's current binding toward its target, preempting
//    containers off servers that change reservations;
//  - replacing unplanned-failed servers from the shared random-failure
//    buffer within a minute (Section 3.3.1);
//  - loaning idle buffer / free capacity to elastic reservations and revoking
//    the loans when failure handling needs the capacity back (Section 3.4).

#ifndef RAS_SRC_CORE_ONLINE_MOVER_H_
#define RAS_SRC_CORE_ONLINE_MOVER_H_

#include <vector>

#include "src/broker/resource_broker.h"
#include "src/core/reservation.h"
#include "src/twine/allocator.h"

namespace ras {

struct MoverStats {
  size_t moves_applied = 0;
  size_t in_use_moves = 0;   // Moves that preempted running containers.
  size_t idle_moves = 0;
  size_t containers_preempted = 0;
  size_t failures_replaced = 0;
  size_t replacements_missed = 0;  // No shared-buffer server available.
  size_t elastic_loans = 0;
  size_t elastic_revocations = 0;
  // Moves that crossed host profiles and required OS reconfiguration
  // (Section 3.1's Host Profile mechanism).
  size_t host_reprofiles = 0;
};

class OnlineMover {
 public:
  // `twine` may be null in solver-only setups; then moves never preempt.
  OnlineMover(ResourceBroker* broker, const ReservationRegistry* registry,
              TwineAllocator* twine);

  // Applies every pending target: preempt, flip current, clear loan state.
  // Returns the number of servers moved this pass.
  size_t ReconcileAll();

  // Fast replacement on unplanned failure: pull a healthy same-type server
  // out of the shared buffer (revoking an elastic loan if needed) and bind it
  // to the impacted reservation. No-op for servers that are free, elastic, or
  // in a buffer themselves.
  void HandleFailure(ServerId failed);

  // A recovered server keeps its binding; the next solve re-optimizes it.
  void HandleRecovery(ServerId recovered);

  // Loans up to `max_loans` idle shared-buffer servers to `elastic_res`.
  size_t LoanIdleBuffersToElastic(ReservationId elastic_res, size_t max_loans);

  // Revokes up to `count` elastic loans whose home is `home`; returns how
  // many were returned.
  size_t RevokeElasticLoans(ReservationId home, size_t count);

  const MoverStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MoverStats(); }

 private:
  // Moves one server between reservations, preempting containers. With
  // defer_retry the displaced replicas are not immediately re-placed
  // (ReconcileAll batches one retry at the end).
  void Execute(ServerId server, ReservationId to, bool defer_retry = false);
  // Finds the shared-buffer reservation covering `type`, or kUnassigned.
  ReservationId SharedBufferFor(HardwareTypeId type) const;

  ResourceBroker* broker_;
  const ReservationRegistry* registry_;
  TwineAllocator* twine_;
  MoverStats stats_;
  const std::string kDefault_;  // The fleet-default host profile ("").
};

}  // namespace ras

#endif  // RAS_SRC_CORE_ONLINE_MOVER_H_
