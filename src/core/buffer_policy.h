// Failure-buffer policy and accounting (Section 3.3).
//
//  - Shared random-failure buffers: one special reservation per hardware
//    type, sized from the forecast random-failure rate (2% of the region).
//  - Embedded correlated-failure buffers: accounting helpers measuring how
//    much spare capacity the current placement needs to survive the loss of
//    any one MSB, and the analytic lower bounds the paper compares against
//    (4.06% achievable given hardware imbalance, 2.8% = 1/36 if hardware
//    were perfectly spread).

#ifndef RAS_SRC_CORE_BUFFER_POLICY_H_
#define RAS_SRC_CORE_BUFFER_POLICY_H_

#include <vector>

#include "src/broker/resource_broker.h"
#include "src/core/reservation.h"

namespace ras {

// Creates (or resizes) the per-hardware-type shared random-failure buffer
// reservations in `registry`, each sized to `fraction` of the region's
// population of that type. Returns the buffer reservation ids. Idempotent:
// re-invoking updates capacities in place.
std::vector<ReservationId> EnsureSharedBuffers(ReservationRegistry& registry,
                                               const RegionTopology& topology,
                                               const HardwareCatalog& catalog,
                                               double fraction = 0.02);

// Fraction of `reservation`'s servers that sit in its most-loaded MSB — the
// embedded buffer it must hold to survive an MSB loss (Figure 12's metric).
// Returns 0 for reservations with no servers.
double MaxMsbShare(const ResourceBroker& broker, ReservationId reservation);

// Region-wide embedded-buffer need: sum over guaranteed reservations of
// their worst-MSB server count, as a fraction of all their servers.
double RegionEmbeddedBufferFraction(const ResourceBroker& broker,
                                    const ReservationRegistry& registry);

// Analytic lower bound on a reservation's max-MSB share given where its
// compatible hardware lives: waterfill C_r over the per-MSB compatible RRU
// capacity; the minimum achievable worst-MSB fraction is level/C_r.
double MinPossibleMaxMsbShare(const ReservationSpec& spec, const RegionTopology& topology);

// The perfectly-spread bound: 1 / #MSBs.
double PerfectSpreadBound(const RegionTopology& topology);

}  // namespace ras

#endif  // RAS_SRC_CORE_BUFFER_POLICY_H_
