#include "src/core/online_mover.h"

#include <cassert>

namespace ras {

OnlineMover::OnlineMover(ResourceBroker* broker, const ReservationRegistry* registry,
                         TwineAllocator* twine)
    : broker_(broker), registry_(registry), twine_(twine) {
  assert(broker != nullptr && registry != nullptr);
}

void OnlineMover::Execute(ServerId server, ReservationId to, bool defer_retry) {
  const ServerRecord& rec = broker_->record(server);
  if (rec.current == to) {
    return;
  }
  bool in_use = rec.has_containers;
  if (twine_ != nullptr && in_use) {
    stats_.containers_preempted += twine_->EvictServer(server, /*replace_now=*/!defer_retry);
  }
  if (rec.elastic_loan) {
    broker_->SetElasticLoan(server, kUnassigned, false);
  }
  // Host cleanup + OS reconfiguration when the target reservation requires a
  // different host profile (kernel version & settings, Section 3.1).
  const ReservationSpec* from_spec =
      rec.current == kUnassigned ? nullptr : registry_->Find(rec.current);
  const ReservationSpec* to_spec = to == kUnassigned ? nullptr : registry_->Find(to);
  const std::string& from_profile = from_spec != nullptr ? from_spec->host_profile : kDefault_;
  const std::string& to_profile = to_spec != nullptr ? to_spec->host_profile : kDefault_;
  if (from_profile != to_profile) {
    ++stats_.host_reprofiles;
  }
  broker_->SetCurrent(server, to);
  ++stats_.moves_applied;
  (in_use ? stats_.in_use_moves : stats_.idle_moves)++;
  if (twine_ != nullptr && !defer_retry) {
    // Freshly arrived capacity may unblock pending replicas.
    twine_->RetryPending();
  }
}

size_t OnlineMover::ReconcileAll() {
  // Apply every binding change first, re-place displaced replicas once at
  // the end: retrying after each move would land containers on servers that
  // are themselves about to move, preempting them twice.
  size_t moved = 0;
  for (ServerId server : broker_->PendingMoves()) {
    const ServerRecord& rec = broker_->record(server);
    Execute(server, rec.target, /*defer_retry=*/true);
    ++moved;
  }
  if (twine_ != nullptr && moved > 0) {
    twine_->RetryPending();
  }
  return moved;
}

ReservationId OnlineMover::SharedBufferFor(HardwareTypeId type) const {
  for (const ReservationSpec* spec : registry_->All()) {
    if (spec->is_shared_random_buffer && spec->ValueOfType(type) > 0.0) {
      return spec->id;
    }
  }
  return kUnassigned;
}

void OnlineMover::HandleFailure(ServerId failed) {
  const ServerRecord& rec = broker_->record(failed);
  ReservationId impacted = rec.elastic_loan ? rec.home : rec.current;
  if (impacted == kUnassigned) {
    return;  // Free-pool server: nothing to protect.
  }
  const ReservationSpec* spec = registry_->Find(impacted);
  if (spec == nullptr || spec->is_shared_random_buffer || spec->is_elastic) {
    return;  // Buffers and elastic capacity absorb their own failures.
  }
  if (twine_ != nullptr && rec.has_containers) {
    stats_.containers_preempted += twine_->EvictServer(failed);
  }

  // Pull a healthy replacement of a type this reservation values, preferring
  // the exact type of the failed server.
  HardwareTypeId failed_type = broker_->topology().server(failed).type;
  std::vector<HardwareTypeId> preference;
  preference.push_back(failed_type);
  for (size_t t = 0; t < spec->rru_per_type.size(); ++t) {
    if (t != failed_type && spec->rru_per_type[t] > 0.0) {
      preference.push_back(static_cast<HardwareTypeId>(t));
    }
  }
  for (HardwareTypeId type : preference) {
    if (spec->ValueOfType(type) <= 0.0) {
      continue;
    }
    ReservationId buffer = SharedBufferFor(type);
    if (buffer == kUnassigned) {
      continue;
    }
    // Candidates: servers sitting in the buffer, plus buffer servers
    // currently loaned out to elastic reservations (their membership moved
    // with the loan; failure handling revokes them, Section 3.4).
    std::vector<ServerId> candidates = broker_->ServersInReservation(buffer);
    for (const ReservationSpec* elastic : registry_->AllElastic()) {
      for (ServerId loaned : broker_->ServersInReservation(elastic->id)) {
        if (broker_->record(loaned).elastic_loan && broker_->record(loaned).home == buffer) {
          candidates.push_back(loaned);
        }
      }
    }
    for (ServerId candidate : candidates) {
      const ServerRecord& cand = broker_->record(candidate);
      if (IsUnplanned(cand.unavailability)) {
        continue;
      }
      if (broker_->topology().server(candidate).type != type) {
        continue;
      }
      if (cand.elastic_loan) {
        if (twine_ != nullptr && cand.has_containers) {
          stats_.containers_preempted += twine_->EvictServer(candidate);
        }
        broker_->SetElasticLoan(candidate, kUnassigned, false);
        ++stats_.elastic_revocations;
      }
      Execute(candidate, impacted);
      // Persist the intent too; the next solve may still re-optimize it.
      broker_->SetTarget(candidate, impacted);
      ++stats_.failures_replaced;
      return;
    }
  }
  ++stats_.replacements_missed;
}

void OnlineMover::HandleRecovery(ServerId recovered) {
  (void)recovered;  // Binding is kept; the hourly solve re-evaluates it.
}

size_t OnlineMover::LoanIdleBuffersToElastic(ReservationId elastic_res, size_t max_loans) {
  const ReservationSpec* elastic = registry_->Find(elastic_res);
  if (elastic == nullptr || !elastic->is_elastic) {
    return 0;
  }
  size_t loaned = 0;
  for (const ReservationSpec* spec : registry_->All()) {
    if (!spec->is_shared_random_buffer) {
      continue;
    }
    std::vector<ServerId> members = broker_->ServersInReservation(spec->id);
    for (ServerId server : members) {
      if (loaned >= max_loans) {
        return loaned;
      }
      const ServerRecord& rec = broker_->record(server);
      if (rec.has_containers || rec.elastic_loan || IsUnplanned(rec.unavailability)) {
        continue;
      }
      if (elastic->ValueOfType(broker_->topology().server(server).type) <= 0.0) {
        continue;
      }
      broker_->SetElasticLoan(server, spec->id, true);
      broker_->SetCurrent(server, elastic_res);
      ++stats_.elastic_loans;
      ++loaned;
    }
  }
  return loaned;
}

size_t OnlineMover::RevokeElasticLoans(ReservationId home, size_t count) {
  size_t revoked = 0;
  // Loaned servers live in elastic reservations' membership lists.
  for (const ReservationSpec* elastic : registry_->AllElastic()) {
    std::vector<ServerId> members = broker_->ServersInReservation(elastic->id);
    for (ServerId server : members) {
      if (revoked >= count) {
        return revoked;
      }
      const ServerRecord& rec = broker_->record(server);
      if (!rec.elastic_loan || rec.home != home) {
        continue;
      }
      if (twine_ != nullptr && rec.has_containers) {
        stats_.containers_preempted += twine_->EvictServer(server);
      }
      broker_->SetElasticLoan(server, kUnassigned, false);
      broker_->SetCurrent(server, home);
      ++stats_.elastic_revocations;
      ++revoked;
    }
  }
  return revoked;
}

}  // namespace ras
