#include "src/core/round_delta.h"

#include <algorithm>
#include <cstddef>

namespace ras {
namespace {

// Bound-affecting fields the model patcher re-targets in place.
bool SameSize(const ReservationSpec& a, const ReservationSpec& b) {
  return a.capacity_rru == b.capacity_rru && a.msb_spread_alpha == b.msb_spread_alpha &&
         a.rack_spread_alpha == b.rack_spread_alpha && a.affinity_theta == b.affinity_theta &&
         a.max_msb_fraction_hard == b.max_msb_fraction_hard && a.dc_affinity == b.dc_affinity;
}

bool SameServerState(const ServerSolveState& a, const ServerSolveState& b) {
  return a.current == b.current && a.in_use == b.in_use && a.available == b.available;
}

}  // namespace

bool ReservationStructureEqual(const ReservationSpec& a, const ReservationSpec& b) {
  if (a.id != b.id || a.rru_per_type != b.rru_per_type ||
      a.needs_correlated_buffer != b.needs_correlated_buffer ||
      a.is_shared_random_buffer != b.is_shared_random_buffer || a.is_elastic != b.is_elastic ||
      a.externally_managed != b.externally_managed) {
    return false;
  }
  // The quorum cap toggling on or off adds/removes rows; magnitude-only
  // changes patch.
  if ((a.max_msb_fraction_hard > 0.0) != (b.max_msb_fraction_hard > 0.0)) {
    return false;
  }
  // Affinity rows exist per key; values patch as bounds.
  if (a.dc_affinity.size() != b.dc_affinity.size()) {
    return false;
  }
  auto ita = a.dc_affinity.begin();
  auto itb = b.dc_affinity.begin();
  for (; ita != a.dc_affinity.end(); ++ita, ++itb) {
    if (ita->first != itb->first) {
      return false;
    }
  }
  return true;
}

bool ClassStructureEqual(const std::vector<EquivalenceClass>& a,
                         const std::vector<EquivalenceClass>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].group != b[i].group || a[i].msb != b[i].msb || a[i].dc != b[i].dc ||
        a[i].type != b[i].type || a[i].current != b[i].current || a[i].in_use != b[i].in_use) {
      return false;
    }
  }
  return true;
}

RoundDelta ComputeRoundDelta(const SolveInput& prev, const SolveInput& next) {
  RoundDelta delta;
  delta.same_region = prev.topology == next.topology && prev.catalog == next.catalog &&
                      prev.topology != nullptr && prev.catalog != nullptr;

  // --- Servers (indexed by ServerId in both snapshots) ---
  const size_t common = std::min(prev.servers.size(), next.servers.size());
  for (size_t i = 0; i < common; ++i) {
    if (!SameServerState(prev.servers[i], next.servers[i])) {
      ++delta.servers_changed;
    }
  }
  delta.servers_added = static_cast<int>(next.servers.size() - common);
  delta.servers_removed = static_cast<int>(prev.servers.size() - common);

  // --- Reservations (id-ordered in both snapshots; merge walk) ---
  bool order_preserved = true;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < prev.reservations.size() && ib < next.reservations.size()) {
    const ReservationSpec& a = prev.reservations[ia];
    const ReservationSpec& b = next.reservations[ib];
    if (a.id == b.id) {
      if (!ReservationStructureEqual(a, b)) {
        ++delta.reservations_restructured;
      } else if (!SameSize(a, b)) {
        ++delta.reservations_resized;
      }
      ++ia;
      ++ib;
    } else if (a.id < b.id) {
      ++delta.reservations_removed;
      order_preserved = false;
      ++ia;
    } else {
      ++delta.reservations_added;
      order_preserved = false;
      ++ib;
    }
  }
  delta.reservations_removed += static_cast<int>(prev.reservations.size() - ia);
  delta.reservations_added += static_cast<int>(next.reservations.size() - ib);
  if (delta.reservations_added > 0 || delta.reservations_removed > 0) {
    order_preserved = false;
  }
  delta.reservations_structurally_equal =
      order_preserved && delta.reservations_restructured == 0;
  return delta;
}

}  // namespace ras
