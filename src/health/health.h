// Health Check Service simulation (Figure 6's monitor, fed by the stochastic
// event model of Section 2.5):
//
//  - random server failures: hardware (long repair times, ~0.1% of the fleet
//    at any instant) and software (minutes);
//  - ToR switch failures taking out a whole rack (also "random" in the
//    paper's taxonomy);
//  - correlated MSB failures (~1 MSB per region-month, lasting hours);
//  - planned maintenance scheduled in MSB-granular waves, capped at 25% of an
//    MSB concurrently (Section 3.3.1).
//
// `HealthEventGenerator` pre-draws a deterministic schedule for a horizon;
// `HealthCheckService` replays it against a ResourceBroker as simulated time
// advances, maintaining per-server active-event counts so overlapping events
// compose correctly.

#ifndef RAS_SRC_HEALTH_HEALTH_H_
#define RAS_SRC_HEALTH_HEALTH_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/broker/resource_broker.h"
#include "src/topology/topology.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"

namespace ras {

enum class HealthEventKind : uint8_t {
  kServerHardware,
  kServerSoftware,
  kTorFailure,            // Rack-scoped random failure.
  kMsbCorrelatedFailure,  // MSB-scoped correlated failure.
  kPlannedMaintenance,    // MSB-granular wave, <= 25% of the MSB at once.
};

const char* HealthEventKindName(HealthEventKind kind);

struct HealthEvent {
  HealthEventKind kind;
  SimTime start;
  SimDuration duration;
  std::vector<ServerId> servers;  // Affected servers (resolved at generation).

  SimTime end() const { return start + duration; }
};

struct HealthRates {
  // Random failures.
  double server_hw_failures_per_server_day = 0.0004;
  SimDuration hw_repair_mean = Days(5);
  double server_sw_failures_per_server_day = 0.004;
  SimDuration sw_repair_mean = Minutes(45);
  double tor_failures_per_rack_day = 0.0015;
  SimDuration tor_repair_mean = Hours(4);
  // Correlated failures: the paper observes ~2% of MSBs impacted per year,
  // roughly one MSB failure per region-month at Facebook's scale.
  double msb_failures_per_msb_year = 0.35;
  SimDuration msb_outage_mean = Hours(8);
  // Planned maintenance: kernel updates, switch and power-device work, and
  // physical maintenance make planned events the *majority* of capacity loss
  // (Section 2.5: combined unavailability can exceed 5%, mostly planned).
  // Several waves per MSB-month, each touching <= 25% of the MSB.
  double maintenance_waves_per_msb_month = 6.0;
  SimDuration maintenance_duration_mean = Hours(18);
  double maintenance_chunk_fraction = 0.25;
};

// Draws a full event schedule for [start, start + horizon), sorted by start.
// Deterministic in `rng` state.
class HealthEventGenerator {
 public:
  HealthEventGenerator(const RegionTopology* topology, HealthRates rates)
      : topology_(topology), rates_(rates) {}

  std::vector<HealthEvent> GenerateSchedule(SimTime start, SimDuration horizon, Rng& rng) const;

 private:
  const RegionTopology* topology_;
  HealthRates rates_;
};

// Replays a schedule against the broker. Overlapping events compose: a
// server is marked with the most severe active kind (unplanned hardware >
// unplanned software > planned maintenance > none).
class HealthCheckService {
 public:
  explicit HealthCheckService(ResourceBroker* broker);

  void LoadSchedule(std::vector<HealthEvent> schedule);
  // Injects one event immediately (used by failure-drill examples/tests).
  void Inject(const HealthEvent& event);

  // Processes all event starts/ends with time <= now, updating the broker.
  void AdvanceTo(SimTime now);

  // Fires when a server transitions into an unplanned-unavailable state;
  // this is the Online Mover's replacement trigger (Figure 6, step 7).
  using FailureCallback = std::function<void(ServerId, HealthEventKind)>;
  void SetFailureCallback(FailureCallback cb) { failure_cb_ = std::move(cb); }
  using RecoveryCallback = std::function<void(ServerId)>;
  void SetRecoveryCallback(RecoveryCallback cb) { recovery_cb_ = std::move(cb); }

  // Count of servers currently affected by each kind (for the Figure 5 bench).
  size_t ActiveCount(HealthEventKind kind) const { return active_count_[static_cast<int>(kind)]; }

 private:
  struct Transition {
    SimTime time;
    bool is_start;
    uint32_t event_index;
    // Ends sort after starts at the same instant so zero-length events apply.
    bool operator>(const Transition& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return is_start < other.is_start;
    }
  };

  void Apply(const HealthEvent& event, bool starting);
  void RecomputeServer(ServerId id);

  ResourceBroker* broker_;
  std::vector<HealthEvent> events_;
  std::priority_queue<Transition, std::vector<Transition>, std::greater<Transition>> queue_;
  // Per server: active event counts by kind.
  struct Counts {
    uint16_t hw = 0;
    uint16_t sw = 0;
    uint16_t maintenance = 0;
  };
  std::vector<Counts> per_server_;
  size_t active_count_[5] = {0, 0, 0, 0, 0};
  FailureCallback failure_cb_;
  RecoveryCallback recovery_cb_;
};

}  // namespace ras

#endif  // RAS_SRC_HEALTH_HEALTH_H_
