#include "src/health/health.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ras {

const char* HealthEventKindName(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kServerHardware:
      return "server-hardware";
    case HealthEventKind::kServerSoftware:
      return "server-software";
    case HealthEventKind::kTorFailure:
      return "tor-failure";
    case HealthEventKind::kMsbCorrelatedFailure:
      return "msb-correlated";
    case HealthEventKind::kPlannedMaintenance:
      return "planned-maintenance";
  }
  return "unknown";
}

namespace {

// Draws Poisson arrival times over [start, start+horizon) at `rate_per_sec`
// and invokes `make_event` for each.
template <typename MakeEvent>
void DrawArrivals(SimTime start, SimDuration horizon, double rate_per_sec, Rng& rng,
                  MakeEvent make_event) {
  if (rate_per_sec <= 0.0) {
    return;
  }
  double t = 0.0;
  double end = static_cast<double>(horizon.seconds);
  while (true) {
    t += rng.Exponential(rate_per_sec);
    if (t >= end) {
      break;
    }
    make_event(start + Seconds(static_cast<int64_t>(t)));
  }
}

SimDuration DrawDuration(SimDuration mean, Rng& rng) {
  // Exponential durations with a floor of one minute.
  double d = rng.Exponential(1.0 / std::max<double>(1.0, static_cast<double>(mean.seconds)));
  return Seconds(std::max<int64_t>(60, static_cast<int64_t>(d)));
}

constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerMonth = 86400.0 * 30.0;
constexpr double kSecondsPerYear = 86400.0 * 365.0;

}  // namespace

std::vector<HealthEvent> HealthEventGenerator::GenerateSchedule(SimTime start,
                                                                SimDuration horizon,
                                                                Rng& rng) const {
  std::vector<HealthEvent> events;
  const RegionTopology& topo = *topology_;
  const size_t n_servers = topo.num_servers();
  const size_t n_racks = topo.num_racks();
  const size_t n_msbs = topo.num_msbs();

  // Random server hardware failures.
  DrawArrivals(start, horizon,
               rates_.server_hw_failures_per_server_day * static_cast<double>(n_servers) /
                   kSecondsPerDay,
               rng, [&](SimTime t) {
                 HealthEvent e;
                 e.kind = HealthEventKind::kServerHardware;
                 e.start = t;
                 e.duration = DrawDuration(rates_.hw_repair_mean, rng);
                 e.servers = {static_cast<ServerId>(
                     rng.UniformInt(0, static_cast<int64_t>(n_servers) - 1))};
                 events.push_back(std::move(e));
               });

  // Random server software failures.
  DrawArrivals(start, horizon,
               rates_.server_sw_failures_per_server_day * static_cast<double>(n_servers) /
                   kSecondsPerDay,
               rng, [&](SimTime t) {
                 HealthEvent e;
                 e.kind = HealthEventKind::kServerSoftware;
                 e.start = t;
                 e.duration = DrawDuration(rates_.sw_repair_mean, rng);
                 e.servers = {static_cast<ServerId>(
                     rng.UniformInt(0, static_cast<int64_t>(n_servers) - 1))};
                 events.push_back(std::move(e));
               });

  // ToR failures: one rack at a time.
  DrawArrivals(
      start, horizon,
      rates_.tor_failures_per_rack_day * static_cast<double>(n_racks) / kSecondsPerDay, rng,
      [&](SimTime t) {
        HealthEvent e;
        e.kind = HealthEventKind::kTorFailure;
        e.start = t;
        e.duration = DrawDuration(rates_.tor_repair_mean, rng);
        RackId rack = static_cast<RackId>(rng.UniformInt(0, static_cast<int64_t>(n_racks) - 1));
        e.servers = topo.ServersInRack(rack);
        events.push_back(std::move(e));
      });

  // Correlated MSB failures.
  DrawArrivals(start, horizon,
               rates_.msb_failures_per_msb_year * static_cast<double>(n_msbs) / kSecondsPerYear,
               rng, [&](SimTime t) {
                 HealthEvent e;
                 e.kind = HealthEventKind::kMsbCorrelatedFailure;
                 e.start = t;
                 e.duration = DrawDuration(rates_.msb_outage_mean, rng);
                 MsbId msb =
                     static_cast<MsbId>(rng.UniformInt(0, static_cast<int64_t>(n_msbs) - 1));
                 e.servers = topo.ServersInMsb(msb);
                 events.push_back(std::move(e));
               });

  // Planned maintenance waves: pick an MSB, take a random <= 25% chunk.
  DrawArrivals(start, horizon,
               rates_.maintenance_waves_per_msb_month * static_cast<double>(n_msbs) /
                   kSecondsPerMonth,
               rng, [&](SimTime t) {
                 HealthEvent e;
                 e.kind = HealthEventKind::kPlannedMaintenance;
                 e.start = t;
                 e.duration = DrawDuration(rates_.maintenance_duration_mean, rng);
                 MsbId msb =
                     static_cast<MsbId>(rng.UniformInt(0, static_cast<int64_t>(n_msbs) - 1));
                 std::vector<ServerId> pool = topo.ServersInMsb(msb);
                 rng.Shuffle(pool);
                 size_t take = std::max<size_t>(
                     1, static_cast<size_t>(static_cast<double>(pool.size()) *
                                            rates_.maintenance_chunk_fraction * rng.NextDouble()));
                 pool.resize(std::min(take, pool.size()));
                 e.servers = std::move(pool);
                 events.push_back(std::move(e));
               });

  std::sort(events.begin(), events.end(),
            [](const HealthEvent& a, const HealthEvent& b) { return a.start < b.start; });
  return events;
}

HealthCheckService::HealthCheckService(ResourceBroker* broker) : broker_(broker) {
  assert(broker != nullptr);
  per_server_.resize(broker->num_servers());
}

void HealthCheckService::LoadSchedule(std::vector<HealthEvent> schedule) {
  for (HealthEvent& e : schedule) {
    uint32_t index = static_cast<uint32_t>(events_.size());
    events_.push_back(std::move(e));
    queue_.push(Transition{events_[index].start, true, index});
    queue_.push(Transition{events_[index].end(), false, index});
  }
}

void HealthCheckService::Inject(const HealthEvent& event) {
  uint32_t index = static_cast<uint32_t>(events_.size());
  events_.push_back(event);
  queue_.push(Transition{event.start, true, index});
  queue_.push(Transition{event.end(), false, index});
}

void HealthCheckService::AdvanceTo(SimTime now) {
  while (!queue_.empty() && queue_.top().time <= now) {
    Transition t = queue_.top();
    queue_.pop();
    Apply(events_[t.event_index], t.is_start);
  }
}

void HealthCheckService::Apply(const HealthEvent& event, bool starting) {
  int delta = starting ? 1 : -1;
  active_count_[static_cast<int>(event.kind)] += static_cast<size_t>(delta);
  for (ServerId id : event.servers) {
    Counts& c = per_server_[id];
    switch (event.kind) {
      case HealthEventKind::kServerHardware:
        c.hw = static_cast<uint16_t>(c.hw + delta);
        break;
      case HealthEventKind::kServerSoftware:
      case HealthEventKind::kTorFailure:
      case HealthEventKind::kMsbCorrelatedFailure:
        c.sw = static_cast<uint16_t>(c.sw + delta);
        break;
      case HealthEventKind::kPlannedMaintenance:
        c.maintenance = static_cast<uint16_t>(c.maintenance + delta);
        break;
    }
    Unavailability before = broker_->record(id).unavailability;
    RecomputeServer(id);
    Unavailability after = broker_->record(id).unavailability;
    if (starting && !IsUnplanned(before) && IsUnplanned(after) && failure_cb_) {
      failure_cb_(id, event.kind);
    }
    if (!starting && IsUnplanned(before) && !IsUnplanned(after) && recovery_cb_) {
      recovery_cb_(id);
    }
  }
}

void HealthCheckService::RecomputeServer(ServerId id) {
  const Counts& c = per_server_[id];
  Unavailability u = Unavailability::kNone;
  if (c.maintenance > 0) {
    u = Unavailability::kPlannedMaintenance;
  }
  if (c.sw > 0) {
    u = Unavailability::kUnplannedSoftware;
  }
  if (c.hw > 0) {
    u = Unavailability::kUnplannedHardware;
  }
  broker_->SetUnavailability(id, u);
}

}  // namespace ras
