// Demand splitting for shard decomposition (paper §3.5.2): each
// reservation's RRU demand is divided across the K shards proportionally to
// how much capacity each shard can actually supply it (summed RRU value of
// the shard's available servers under the reservation's per-type RRU vector
// — heterogeneous hardware means the usable fraction differs per shard).
//
// Conservation is exact: the integer part of the demand is apportioned by
// largest-remainder rounding (no RRU is lost or duplicated across shards),
// and any fractional residue rides on the largest-remainder shard. Buffer
// requirements travel with the split: flags (needs_correlated_buffer,
// is_storage, max_msb_fraction_hard) and the spread alphas are fractions of
// C_r and apply per shard to its share.

#ifndef RAS_SRC_SHARD_DEMAND_SPLITTER_H_
#define RAS_SRC_SHARD_DEMAND_SPLITTER_H_

#include <vector>

#include "src/core/solve_input.h"
#include "src/shard/shard_planner.h"

namespace ras {

// Splits `total` (>= 0) proportionally to `weights` with largest-remainder
// rounding at 1-RRU granularity. Guarantees:
//   - shares sum to `total` exactly when `total` is integral (pure integer
//     arithmetic), and to within one double rounding otherwise;
//   - zero-weight entries receive a zero share;
//   - if every weight is zero the whole demand lands on entry 0 (the shard
//     solve softens the resulting shortfall rather than losing the demand).
std::vector<double> SplitByLargestRemainder(double total, const std::vector<double>& weights);

struct DemandSplitOptions {
  // POP-style span limiting. A reservation's demand is split across just
  // enough shards (its "span") that each member carries at most
  // `span_max_fill` of the average per-shard usable capacity for that
  // reservation; every other shard gets a zero share. Small reservations
  // land whole on one shard — their spread and buffer constraints then run
  // at full C_r scale, exactly as in the monolithic model — while
  // region-sized reservations still span all K. Span members are chosen
  // deterministically: shards already holding the reservation's servers
  // first, then least-loaded (ties -> lowest shard index), processing
  // reservations in descending-demand order so big spans are placed before
  // the load picture fills in. <= 0 disables spans: demand splits
  // proportionally across all K shards.
  double span_max_fill = 0.5;
};

struct ShardDemand {
  // usable_rru[r][k]: RRU capacity shard k can supply reservation r.
  std::vector<std::vector<double>> usable_rru;
  // shares[r][k]: RRU demand assigned to shard k; sums to capacity_rru over k.
  std::vector<std::vector<double>> shares;
  // span[r]: ascending shard indices that received a nonzero share of r.
  std::vector<std::vector<int>> span;
  // Per-shard reservation lists: same ids and order as input.reservations,
  // capacity replaced by the shard's share. Every reservation appears in
  // every shard (possibly with a zero share) so callers can index these by
  // the region-wide reservation index.
  std::vector<std::vector<ReservationSpec>> reservations;
};

ShardDemand SplitDemand(const SolveInput& input, const ShardPlan& plan,
                        const DemandSplitOptions& options = {});

}  // namespace ras

#endif  // RAS_SRC_SHARD_DEMAND_SPLITTER_H_
