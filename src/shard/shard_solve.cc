#include "src/shard/shard_solve.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/monotonic_time.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace ras {
namespace {

// Worst MIP status across shards: any shard stuck below feasible drags the
// aggregate down, matching how the supervisor interprets a monolithic solve.
MipStatus WorseOf(MipStatus a, MipStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

void AccumulatePhase(PhaseStats& into, const PhaseStats& from) {
  if (!from.ran) {
    return;
  }
  into.timings.ras_build_s += from.timings.ras_build_s;
  into.timings.solver_build_s += from.timings.solver_build_s;
  into.timings.initial_state_s += from.timings.initial_state_s;
  into.timings.mip_s += from.timings.mip_s;
  into.assignment_variables += from.assignment_variables;
  into.model_rows += from.model_rows;
  into.model_variables += from.model_variables;
  into.memory_bytes += from.memory_bytes;
  into.mip_status = into.ran ? WorseOf(into.mip_status, from.mip_status) : from.mip_status;
  into.objective += from.objective;
  into.best_bound += from.best_bound;
  into.warm_start_objective += from.warm_start_objective;
  into.nodes += from.nodes;
  into.dual_resolves += from.dual_resolves;
  into.dual_iterations += from.dual_iterations;
  into.presolve_rows_removed += from.presolve_rows_removed;
  // Reuse telemetry: the aggregate claims reuse only when every shard reused
  // that way; deltas sum, with any cold shard (-1) making the total unknown.
  if (into.ran) {
    into.model_patched = into.model_patched && from.model_patched;
    into.basis_reused = into.basis_reused && from.basis_reused;
    into.solve_skipped = into.solve_skipped && from.solve_skipped;
    into.delta_servers = (into.delta_servers < 0 || from.delta_servers < 0)
                             ? -1
                             : into.delta_servers + from.delta_servers;
  } else {
    into.model_patched = from.model_patched;
    into.basis_reused = from.basis_reused;
    into.solve_skipped = from.solve_skipped;
    into.delta_servers = from.delta_servers;
  }
  into.ran = true;
}

struct ShardResult {
  Status status;
  SolveStats stats;
  DecodedAssignment decoded;
  double wall_seconds = 0.0;
};

// The coordinator's merge state: one result slot per shard, written by pool
// workers as their shard finishes and read back (in shard order, so the merge
// is schedule-independent) after the barrier. Workers solve outside the lock
// and only move their finished ShardResult into its slot under it.
struct MergeState {
  Mutex mu;
  std::vector<ShardResult> slots GUARDED_BY(mu);
};

}  // namespace

SolveInput MakeShardInput(const SolveInput& region, const ShardPlan& plan,
                          const ShardDemand& demand, int shard) {
  SolveInput input = region;
  input.reservations.clear();
  // Lookup-only (never iterated): membership test while copying `region`,
  // whose own order drives the shard input.
  std::unordered_set<ReservationId> in_span;
  for (const ReservationSpec& spec : demand.reservations[static_cast<size_t>(shard)]) {
    if (spec.capacity_rru > 0.0) {
      input.reservations.push_back(spec);
      in_span.insert(spec.id);
    }
  }
  for (ServerId id = 0; id < input.servers.size(); ++id) {
    ServerSolveState& state = input.servers[id];
    const bool in_shard = plan.shard_of_server[id] == shard;
    const bool frozen =
        in_shard && state.current != kUnassigned && in_span.count(state.current) == 0;
    if (!in_shard || frozen) {
      // Invisible to this shard's solve. The binding is cleared only in the
      // sub-input (an unavailable server may reference a reservation this
      // shard does not carry); the merge emits snapshot bindings for every
      // available server the sub-solves did not cover.
      state.available = false;
      state.current = kUnassigned;
      state.in_use = false;
    }
  }
  return input;
}

// RASLINT-HOT: shard worker bodies run inside this fan-out.
ShardSolveOutcome SolveShards(const SolveInput& input, const ShardPlan& plan,
                              const ShardDemand& demand, const ShardSolveFn& solve_shard,
                              const ShardSolveOptions& options) {
  ShardSolveOutcome outcome;
  const int shard_count = plan.shard_count;
  const double start = util::MonotonicSeconds();

  MergeState state;
  {
    MutexLock lock(&state.mu);  // No workers yet.
    state.slots.resize(static_cast<size_t>(shard_count));
  }
  // Captured before the fan-out: pool workers carry no thread-local span
  // context, so each per-shard span names the coordinator's span explicitly.
  const uint64_t trace_parent = obs::CurrentSpanId();
  auto run_shard = [&](int shard) {
    ShardResult result;
    SolveInput shard_input = MakeShardInput(input, plan, demand, shard);
    if (shard_input.reservations.empty()) {
      return;  // No span member placed demand here; the slot stays empty-OK.
    }
    obs::SpanScope shard_span(obs::Tracer::Default(), "shard", trace_parent);
    shard_span.set_value(shard);
    double t0 = util::MonotonicSeconds();
    Result<SolveStats> solved = solve_shard(shard, shard_input, &result.decoded);
    result.wall_seconds = util::MonotonicSeconds() - t0;
    static obs::Histogram& shard_seconds = obs::MetricRegistry::Default().histogram(
        "ras_shard_solve_seconds", "Wall time of one shard's sub-solve.", 0.0, 30.0, 120);
    shard_seconds.Observe(result.wall_seconds);
    if (solved.ok()) {
      result.stats = *solved;
    } else {
      result.status = solved.status();
    }
    MutexLock lock(&state.mu);
    state.slots[static_cast<size_t>(shard)] = std::move(result);
  };

  int hw = static_cast<int>(std::thread::hardware_concurrency());
  int threads = options.threads > 0 ? options.threads : std::min(shard_count, std::max(1, hw));
  threads = std::min(threads, shard_count);
  if (threads <= 1) {
    for (int shard = 0; shard < shard_count; ++shard) {
      run_shard(shard);
    }
  } else {
    ThreadPool pool(threads);
    for (int shard = 0; shard < shard_count; ++shard) {
      pool.Submit([&run_shard, shard] { run_shard(shard); });
    }
    pool.Wait();
  }

  // Merge in shard order; each result slot is fixed, so the merged target
  // set is independent of worker scheduling. The pool's Wait() barrier has
  // passed, but the merge still reads the slots under the lock.
  MutexLock lock(&state.mu);
  Status first_error;
  size_t succeeded = 0;
  outcome.aggregate.shard_count = shard_count;
  std::vector<char> covered(input.servers.size(), 0);
  for (int shard = 0; shard < shard_count; ++shard) {
    ShardResult& result = state.slots[static_cast<size_t>(shard)];
    ShardOutcomeSummary summary;
    summary.shard = shard;
    summary.status = result.status;
    summary.wall_seconds = result.wall_seconds;
    if (result.status.ok()) {
      ++succeeded;
      summary.servers = result.decoded.targets.size();
      summary.objective = result.stats.phase1.objective + result.stats.phase2.objective;
      summary.shortfall_rru = result.stats.total_shortfall_rru;
      AccumulatePhase(outcome.aggregate.phase1, result.stats.phase1);
      AccumulatePhase(outcome.aggregate.phase2, result.stats.phase2);
      outcome.aggregate.total_shortfall_rru += result.stats.total_shortfall_rru;
      for (const auto& target : result.decoded.targets) {
        covered[target.first] = 1;
        outcome.merged.targets.push_back(target);
      }
    } else {
      if (first_error.ok()) {
        first_error = result.status;
      }
      ++outcome.aggregate.failed_shards;
    }
    outcome.shards.push_back(std::move(summary));
  }
  // Every available server a sub-solve did not cover — a failed shard's whole
  // population, servers frozen because their reservation lies outside the
  // shard's span — keeps its snapshot binding; whatever capacity that leaves
  // short is StitchRepair's problem.
  for (int shard = 0; shard < shard_count; ++shard) {
    for (ServerId id : plan.servers[static_cast<size_t>(shard)]) {
      if (input.servers[id].available && !covered[id]) {
        outcome.merged.targets.emplace_back(id, input.servers[id].current);
        ++outcome.shards[static_cast<size_t>(shard)].servers;
      }
    }
  }
  std::sort(outcome.merged.targets.begin(), outcome.merged.targets.end());
  outcome.aggregate.total_seconds = util::MonotonicSeconds() - start;
  outcome.status = succeeded > 0 ? Status::Ok()
                                 : (first_error.ok() ? Status::Internal("no shards to solve")
                                                     : first_error);
  return outcome;
}

}  // namespace ras
