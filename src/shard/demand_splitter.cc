#include "src/shard/demand_splitter.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace ras {

std::vector<double> SplitByLargestRemainder(double total, const std::vector<double>& weights) {
  std::vector<double> shares(weights.size(), 0.0);
  if (weights.empty() || total <= 0.0) {
    return shares;
  }
  double weight_sum = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      weight_sum += w;
    }
  }
  if (weight_sum <= 0.0) {
    shares[0] = total;
    return shares;
  }

  // Integer largest-remainder over the whole-RRU part of the demand. The
  // subtraction total - floor(total) is exact in IEEE double, so the
  // fractional residue carries no rounding error of its own.
  const double whole = std::floor(total);
  const double frac = total - whole;
  const int64_t units = static_cast<int64_t>(whole);

  std::vector<int64_t> base(weights.size(), 0);
  std::vector<double> remainder(weights.size(), -1.0);
  int64_t assigned = 0;
  for (size_t k = 0; k < weights.size(); ++k) {
    if (weights[k] <= 0.0) {
      continue;
    }
    double quota = whole * (weights[k] / weight_sum);
    base[k] = static_cast<int64_t>(std::floor(quota));
    remainder[k] = quota - static_cast<double>(base[k]);
    assigned += base[k];
  }

  // Distribute the leftover units to the largest remainders (ties -> lowest
  // shard index, so the split is deterministic).
  std::vector<size_t> order;
  order.reserve(weights.size());
  for (size_t k = 0; k < weights.size(); ++k) {
    if (weights[k] > 0.0) {
      order.push_back(k);
    }
  }
  std::stable_sort(order.begin(), order.end(), [&remainder](size_t a, size_t b) {
    return remainder[a] > remainder[b];
  });
  int64_t leftover = units - assigned;
  for (size_t i = 0; leftover > 0; i = (i + 1) % order.size()) {
    ++base[order[i]];
    --leftover;
  }
  // Floating-point quota drift can (rarely) over-assign by a unit; claw it
  // back from the smallest remainders so conservation stays exact.
  for (size_t i = order.size(); leftover < 0 && i > 0; --i) {
    if (base[order[i - 1]] > 0) {
      --base[order[i - 1]];
      ++leftover;
    }
  }

  for (size_t k = 0; k < weights.size(); ++k) {
    shares[k] = static_cast<double>(base[k]);
  }
  if (frac > 0.0) {
    shares[order.front()] += frac;
  }
  return shares;
}

ShardDemand SplitDemand(const SolveInput& input, const ShardPlan& plan,
                        const DemandSplitOptions& options) {
  ShardDemand demand;
  const size_t num_res = input.reservations.size();
  const size_t num_shards = static_cast<size_t>(plan.shard_count);
  demand.usable_rru.assign(num_res, std::vector<double>(num_shards, 0.0));
  demand.shares.assign(num_res, std::vector<double>(num_shards, 0.0));
  demand.span.assign(num_res, {});
  demand.reservations.assign(num_shards, input.reservations);

  // Per-(reservation, shard) usable capacity and incumbent footprint, one
  // pass over the fleet.
  std::vector<std::vector<double>> current_rru(num_res,
                                               std::vector<double>(num_shards, 0.0));
  const RegionTopology& topo = *input.topology;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (ServerId id : plan.servers[shard]) {
      if (!input.servers[id].available) {
        continue;  // Unavailable servers supply nothing, in any shard.
      }
      const HardwareTypeId type = topo.server(id).type;
      for (size_t r = 0; r < num_res; ++r) {
        demand.usable_rru[r][shard] += input.reservations[r].ValueOfType(type);
        if (input.servers[id].current == input.reservations[r].id) {
          current_rru[r][shard] += input.reservations[r].ValueOfType(type);
        }
      }
    }
  }

  // Big reservations first: their (multi-shard) spans are placed while the
  // load picture is still empty, then small ones slot into the gaps.
  std::vector<size_t> order(num_res);
  for (size_t r = 0; r < num_res; ++r) {
    order[r] = r;
  }
  std::stable_sort(order.begin(), order.end(), [&input](size_t a, size_t b) {
    return input.reservations[a].capacity_rru > input.reservations[b].capacity_rru;
  });

  std::vector<double> load(num_shards, 0.0);
  for (size_t r : order) {
    const double capacity = input.reservations[r].capacity_rru;
    double total_usable = 0.0;
    for (double u : demand.usable_rru[r]) {
      total_usable += u;
    }

    std::vector<double> weights = demand.usable_rru[r];
    if (options.span_max_fill > 0.0 && total_usable > 0.0 && capacity > 0.0) {
      const double target = options.span_max_fill * total_usable / static_cast<double>(num_shards);
      size_t span_n = target > 0.0 ? static_cast<size_t>(std::ceil(capacity / target)) : num_shards;
      span_n = std::max<size_t>(1, std::min(span_n, num_shards));

      std::vector<size_t> candidates;
      for (size_t k = 0; k < num_shards; ++k) {
        if (demand.usable_rru[r][k] > 0.0) {
          candidates.push_back(k);
        }
      }
      std::stable_sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
        if (current_rru[r][a] != current_rru[r][b]) {
          return current_rru[r][a] > current_rru[r][b];
        }
        return load[a] < load[b];
      });
      if (span_n < candidates.size()) {
        candidates.resize(span_n);
      }
      weights.assign(num_shards, 0.0);
      for (size_t k : candidates) {
        weights[k] = demand.usable_rru[r][k];
      }
    }

    demand.shares[r] = SplitByLargestRemainder(capacity, weights);
    for (size_t shard = 0; shard < num_shards; ++shard) {
      demand.reservations[shard][r].capacity_rru = demand.shares[r][shard];
      load[shard] += demand.shares[r][shard];
      if (demand.shares[r][shard] > 0.0) {
        demand.span[r].push_back(static_cast<int>(shard));
      }
    }
  }
  return demand;
}

}  // namespace ras
