// Shard-based region decomposition (paper §3.5.2): RAS scales the region-wide
// MIP by randomly partitioning servers into K shards, splitting each
// reservation's demand across them, and solving the shards independently.
// POP (Narayanan et al., SOSP'21) shows that random partitioning of granular
// allocation problems recovers near-optimal solutions at a fraction of the
// cost — the granularity here (thousands of interchangeable servers per
// reservation) is exactly the regime where that holds.
//
// The planner partitions at *rack* granularity: a rack is never split across
// shards, so the Ψ_K (rack) spread constraints remain exact inside each
// shard, and every shard samples racks from every MSB so the Ψ_F (MSB)
// spread and buffer terms stay meaningful against the shard's proportional
// demand share. The partition is deterministic in (shard_count, seed).

#ifndef RAS_SRC_SHARD_SHARD_PLANNER_H_
#define RAS_SRC_SHARD_SHARD_PLANNER_H_

#include <cstdint>
#include <vector>

#include "src/topology/topology.h"

namespace ras {

struct ShardPlanOptions {
  int shard_count = 1;
  // Every shard plan derives from this explicit seed — no ambient randomness,
  // so a (fleet seed, shard seed, K) triple always yields the same partition.
  uint64_t seed = 0x5A2D;
};

struct ShardPlan {
  int shard_count = 1;
  uint64_t seed = 0;
  std::vector<int> shard_of_rack;    // RackId -> shard index.
  std::vector<int> shard_of_server;  // ServerId -> shard index.
  std::vector<std::vector<ServerId>> servers;  // Per shard, ascending ids.

  int ShardOf(ServerId id) const { return shard_of_server[id]; }
};

// Partitions the region's racks into `shard_count` shards: seeded shuffle of
// the rack list, then greedy assignment of each rack to the currently
// smallest shard (by server count). Balanced to within one rack, random in
// composition, rack-complete by construction. shard_count is clamped to
// [1, num_racks].
ShardPlan PlanShards(const RegionTopology& topology, const ShardPlanOptions& options);

// Auto-K heuristic: one shard per `target_servers_per_shard` servers, but
// never sharding a region small enough that the monolithic solve is already
// cheap (below 2x the target), never beyond `max_shards`, and never past the
// host's measured over-decomposition knee of 4 shards per hardware thread
// (`hardware_threads` <= 0 queries std::thread::hardware_concurrency; the
// parameter exists so tests can pin it).
int AutoShardCount(size_t num_servers, size_t target_servers_per_shard = 2500,
                   int max_shards = 16, int hardware_threads = 0);

// Resolves SolverConfig::shard_count into the K actually used:
//   1  -> monolithic (the pre-shard solve path, bit-for-bit),
//   >1 -> that K, clamped to the rack count,
//   0  -> AutoShardCount(num_servers), clamped to the rack count.
int EffectiveShardCount(int configured, size_t num_servers, size_t num_racks);

}  // namespace ras

#endif  // RAS_SRC_SHARD_SHARD_PLANNER_H_
