// Cross-shard stitch repair: after per-shard solves are merged back into one
// region-wide target set, some reservations can be left short — the split
// rounds demand at 1-RRU granularity, and a shard can be locally infeasible
// (its share softened away) even though the region as a whole has capacity.
// This pass runs a bounded, deterministic local search over the *merged*
// assignment: first pull free servers into short reservations (preferring
// the MSB where the reservation holds the least RRU, which also shrinks its
// correlated-failure buffer), then, if still short, take idle servers from
// donors whose surplus covers the loss. In-use servers are never preempted.

#ifndef RAS_SRC_SHARD_STITCH_REPAIR_H_
#define RAS_SRC_SHARD_STITCH_REPAIR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/core/solve_input.h"

namespace ras {

struct StitchRepairOptions {
  // Hard cap on total reassignments; repair is a patch, not a second solve.
  size_t max_moves = 2000;
  // Second pass: allow taking idle servers from reservations whose capacity
  // (net of their own buffer) stays satisfied after the donation.
  bool allow_idle_donors = true;
  // Third pass (spread rebalance): per-shard solves cannot see each other's
  // MSB loads, so the merged assignment can pile one reservation's capacity
  // into an MSB beyond the region-wide Ψ_F threshold even though every shard
  // respected its own. When > 0, servers the round freshly acquired for an
  // over-threshold (reservation, MSB) pair are swapped against free servers
  // in the least-loaded MSBs. The threshold mirrors the model's:
  // max(min_spread_threshold_rru, msb_spread_fraction * C_r) — callers pass
  // msb_alpha_factor / num_msbs. <= 0 disables the pass.
  double msb_spread_fraction = 0.0;
  double min_spread_threshold_rru = 4.0;
};

struct StitchRepairStats {
  size_t moves_from_free = 0;
  size_t moves_from_donors = 0;
  size_t moves_spread = 0;
  size_t reservations_short = 0;  // Before repair.
  double shortfall_before_rru = 0.0;
  double shortfall_after_rru = 0.0;
  double spread_over_before_rru = 0.0;
  double spread_over_after_rru = 0.0;

  size_t moves() const { return moves_from_free + moves_from_donors + moves_spread; }
};

// Repairs `targets` in place. `targets` must hold one entry per solvable
// server (the merged shard decode), sorted by server id. Deterministic: the
// same input and targets always produce the same repaired assignment.
StitchRepairStats RepairShortfalls(const SolveInput& input,
                                   std::vector<std::pair<ServerId, ReservationId>>& targets,
                                   const StitchRepairOptions& options = {});

}  // namespace ras

#endif  // RAS_SRC_SHARD_STITCH_REPAIR_H_
