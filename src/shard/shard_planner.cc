#include "src/shard/shard_planner.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <thread>

#include "src/util/rng.h"

namespace ras {

int AutoShardCount(size_t num_servers, size_t target_servers_per_shard, int max_shards,
                   int hardware_threads) {
  if (target_servers_per_shard == 0) {
    return 1;
  }
  if (num_servers < 2 * target_servers_per_shard) {
    return 1;
  }
  size_t k = (num_servers + target_servers_per_shard - 1) / target_servers_per_shard;
  // Shards beyond the machine's parallelism stop overlapping and start
  // queueing, and each extra shard adds split/merge/stitch overhead — the
  // measured knee on a 1-thread host sits at K=4 (bench/bench_shard_scaling:
  // 2.41x at K=4 vs 1.70x at K=8), so auto-K never over-decomposes past
  // 4 shards per hardware thread. Explicitly configured K is not clamped.
  int hw = hardware_threads > 0 ? hardware_threads
                                : static_cast<int>(std::thread::hardware_concurrency());
  size_t knee = static_cast<size_t>(4 * std::max(1, hw));
  k = std::min(k, knee);
  return static_cast<int>(std::min<size_t>(k, static_cast<size_t>(std::max(1, max_shards))));
}

int EffectiveShardCount(int configured, size_t num_servers, size_t num_racks) {
  int k = configured == 0 ? AutoShardCount(num_servers) : std::max(1, configured);
  return static_cast<int>(std::min<size_t>(static_cast<size_t>(k), std::max<size_t>(1, num_racks)));
}

ShardPlan PlanShards(const RegionTopology& topology, const ShardPlanOptions& options) {
  assert(topology.finalized());
  ShardPlan plan;
  plan.seed = options.seed;
  plan.shard_count = EffectiveShardCount(std::max(1, options.shard_count),
                                         topology.num_servers(), topology.num_racks());
  plan.shard_of_rack.assign(topology.num_racks(), 0);
  plan.shard_of_server.assign(topology.num_servers(), 0);
  plan.servers.assign(static_cast<size_t>(plan.shard_count), {});

  // Stratified random sampling: racks are shuffled *within each MSB* and each
  // rack then lands on the currently smallest shard (ties -> lowest index).
  // Dealing MSB by MSB means every shard draws racks from every MSB (when the
  // MSB has at least K racks), so a shard's Ψ_F spread and buffer terms stay
  // meaningful against its demand share; the least-loaded rule keeps shard
  // sizes balanced to within one rack regardless of rack raggedness.
  std::vector<std::vector<RackId>> racks_by_msb(topology.num_msbs());
  for (RackId rack = 0; rack < topology.num_racks(); ++rack) {
    racks_by_msb[topology.rack_msb(rack)].push_back(rack);
  }
  Rng rng(options.seed);
  std::vector<size_t> load(static_cast<size_t>(plan.shard_count), 0);
  for (auto& racks : racks_by_msb) {
    rng.Shuffle(racks);
    for (RackId rack : racks) {
      int best = 0;
      for (int k = 1; k < plan.shard_count; ++k) {
        if (load[static_cast<size_t>(k)] < load[static_cast<size_t>(best)]) {
          best = k;
        }
      }
      plan.shard_of_rack[rack] = best;
      load[static_cast<size_t>(best)] += topology.ServersInRack(rack).size();
    }
  }

  // Server ids ascend within a rack and racks are visited in id order here,
  // so each shard's server list comes out ascending — deterministic merge
  // order downstream.
  for (RackId rack = 0; rack < topology.num_racks(); ++rack) {
    int shard = plan.shard_of_rack[rack];
    for (ServerId id : topology.ServersInRack(rack)) {
      plan.shard_of_server[id] = shard;
      plan.servers[static_cast<size_t>(shard)].push_back(id);
    }
  }
  for (auto& list : plan.servers) {
    std::sort(list.begin(), list.end());
  }
  return plan;
}

}  // namespace ras
