#include "src/shard/stitch_repair.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

namespace ras {
namespace {

constexpr double kEps = 1e-9;

struct Book {
  const SolveInput* input = nullptr;
  std::vector<double> total;                   // Per reservation index.
  std::vector<std::map<MsbId, double>> per_msb;  // Per reservation index.

  double WorstMsb(size_t r) const {
    double worst = 0.0;
    if (input->reservations[r].needs_correlated_buffer) {
      for (const auto& [msb, rru] : per_msb[r]) {
        worst = std::max(worst, rru);
      }
    }
    return worst;
  }

  // Capacity shortfall net of the correlated-failure buffer — the same
  // accounting as the solver's ComputeShortfall.
  double Shortfall(size_t r) const {
    return std::max(0.0, input->reservations[r].capacity_rru - (total[r] - WorstMsb(r)));
  }

  void Add(size_t r, MsbId msb, double value) {
    total[r] += value;
    per_msb[r][msb] += value;
  }

  void Remove(size_t r, MsbId msb, double value) {
    total[r] -= value;
    auto it = per_msb[r].find(msb);
    if (it != per_msb[r].end()) {
      it->second -= value;
      if (it->second <= kEps) {
        per_msb[r].erase(it);
      }
    }
  }
};

}  // namespace

StitchRepairStats RepairShortfalls(const SolveInput& input,
                                   std::vector<std::pair<ServerId, ReservationId>>& targets,
                                   const StitchRepairOptions& options) {
  StitchRepairStats stats;
  const RegionTopology& topo = *input.topology;

  // Lookup-only (never iterated): hash order cannot leak into the repair.
  std::unordered_map<ReservationId, size_t> res_index;
  res_index.reserve(input.reservations.size());
  for (size_t r = 0; r < input.reservations.size(); ++r) {
    res_index[input.reservations[r].id] = r;
  }

  Book book;
  book.input = &input;
  book.total.assign(input.reservations.size(), 0.0);
  book.per_msb.resize(input.reservations.size());
  for (const auto& [server, res] : targets) {
    if (res == kUnassigned) {
      continue;
    }
    auto it = res_index.find(res);
    if (it == res_index.end()) {
      continue;
    }
    const Server& s = topo.server(server);
    book.Add(it->second, s.msb, input.reservations[it->second].ValueOfType(s.type));
  }

  for (size_t r = 0; r < input.reservations.size(); ++r) {
    double short_r = book.Shortfall(r);
    if (short_r > kEps) {
      ++stats.reservations_short;
      stats.shortfall_before_rru += short_r;
    }
  }

  size_t budget = options.max_moves;
  for (size_t r = 0; stats.reservations_short > 0 && r < input.reservations.size() && budget > 0;
       ++r) {
    const ReservationSpec& spec = input.reservations[r];

    // Pass 1: free servers. Prefer the MSB where the reservation holds the
    // least RRU — filling the valley never raises the worst-MSB buffer term.
    while (budget > 0 && book.Shortfall(r) > kEps) {
      size_t best = targets.size();
      double best_msb_rru = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < targets.size(); ++i) {
        const auto& [server, res] = targets[i];
        if (res != kUnassigned || !input.servers[server].available) {
          continue;
        }
        const Server& s = topo.server(server);
        if (spec.ValueOfType(s.type) <= 0.0) {
          continue;
        }
        auto it = book.per_msb[r].find(s.msb);
        double msb_rru = it == book.per_msb[r].end() ? 0.0 : it->second;
        if (msb_rru < best_msb_rru - kEps) {
          best = i;
          best_msb_rru = msb_rru;
        }
      }
      if (best == targets.size()) {
        break;  // No usable free server anywhere.
      }
      const Server& s = topo.server(targets[best].first);
      targets[best].second = spec.id;
      book.Add(r, s.msb, spec.ValueOfType(s.type));
      ++stats.moves_from_free;
      --budget;
    }

    // Pass 2: idle donors with surplus. Never touches in-use servers and
    // never leaves the donor short itself.
    while (options.allow_idle_donors && budget > 0 && book.Shortfall(r) > kEps) {
      size_t best = targets.size();
      double best_msb_rru = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < targets.size(); ++i) {
        const auto& [server, res] = targets[i];
        if (res == kUnassigned || res == spec.id || !input.servers[server].available ||
            input.servers[server].in_use) {
          continue;
        }
        auto donor_it = res_index.find(res);
        if (donor_it == res_index.end()) {
          continue;
        }
        const Server& s = topo.server(server);
        if (spec.ValueOfType(s.type) <= 0.0) {
          continue;
        }
        // Donation must keep the donor whole: simulate the removal.
        size_t d = donor_it->second;
        double value_for_donor = input.reservations[d].ValueOfType(s.type);
        book.Remove(d, s.msb, value_for_donor);
        bool donor_ok = book.Shortfall(d) <= kEps;
        book.Add(d, s.msb, value_for_donor);
        if (!donor_ok) {
          continue;
        }
        auto it = book.per_msb[r].find(s.msb);
        double msb_rru = it == book.per_msb[r].end() ? 0.0 : it->second;
        if (msb_rru < best_msb_rru - kEps) {
          best = i;
          best_msb_rru = msb_rru;
        }
      }
      if (best == targets.size()) {
        break;
      }
      const ServerId server = targets[best].first;
      const Server& s = topo.server(server);
      size_t d = res_index[targets[best].second];
      book.Remove(d, s.msb, input.reservations[d].ValueOfType(s.type));
      targets[best].second = spec.id;
      book.Add(r, s.msb, spec.ValueOfType(s.type));
      ++stats.moves_from_donors;
      --budget;
    }
  }

  // Pass 3: spread rebalance. Per-reservation MSB overage above the model's
  // Ψ_F threshold is shed by swapping freshly-acquired servers (snapshot
  // current != r, so relocating them costs no stability) in the hot MSB
  // against free servers of at-least-equal RRU value in the coolest MSBs —
  // capacity never decreases, and valley-filling never raises the buffer.
  if (options.msb_spread_fraction > 0.0) {
    auto threshold_of = [&options](const ReservationSpec& spec) {
      return std::max(options.min_spread_threshold_rru,
                      options.msb_spread_fraction * spec.capacity_rru);
    };
    for (size_t r = 0; r < input.reservations.size(); ++r) {
      for (const auto& [msb, rru] : book.per_msb[r]) {
        stats.spread_over_before_rru +=
            std::max(0.0, rru - threshold_of(input.reservations[r]));
      }
    }
    for (size_t r = 0; r < input.reservations.size() && budget > 0; ++r) {
      const ReservationSpec& spec = input.reservations[r];
      const double threshold = threshold_of(spec);
      while (budget > 0) {
        // Hottest over-threshold MSB for r (ties -> lowest MSB id).
        MsbId hot = 0;
        double worst_over = kEps;
        for (const auto& [msb, rru] : book.per_msb[r]) {
          if (rru - threshold > worst_over) {
            hot = msb;
            worst_over = rru - threshold;
          }
        }
        if (worst_over <= kEps) {
          break;
        }
        // Donors: servers of r in the hot MSB this round acquired fresh —
        // relocating one changes which server is acquired, not stability.
        // Largest value first (sheds the overage fastest), falling through to
        // smaller donors when no receiver fits the bigger ones.
        std::vector<size_t> donors;
        for (size_t i = 0; i < targets.size(); ++i) {
          const auto& [server, res] = targets[i];
          if (res == spec.id && topo.server(server).msb == hot &&
              input.servers[server].current != spec.id &&
              spec.ValueOfType(topo.server(server).type) > kEps) {
            donors.push_back(i);
          }
        }
        std::stable_sort(donors.begin(), donors.end(), [&](size_t a, size_t b) {
          return spec.ValueOfType(topo.server(targets[a].first).type) >
                 spec.ValueOfType(topo.server(targets[b].first).type);
        });
        bool swapped = false;
        for (size_t donor : donors) {
          const double donor_value = spec.ValueOfType(topo.server(targets[donor].first).type);
          // Receiver: a free server in the MSB where r holds the least RRU.
          // The destination must stay within threshold (each swap strictly
          // shrinks the total overage, so the pass terminates), and the
          // value swing must keep r's capacity whole — a smaller receiver is
          // fine when r carries surplus.
          size_t receiver = targets.size();
          double receiver_msb_rru = std::numeric_limits<double>::infinity();
          double receiver_value = std::numeric_limits<double>::infinity();
          for (size_t i = 0; i < targets.size(); ++i) {
            const auto& [server, res] = targets[i];
            if (res != kUnassigned || !input.servers[server].available) {
              continue;
            }
            const Server& s = topo.server(server);
            double value = spec.ValueOfType(s.type);
            if (s.msb == hot || value <= kEps) {
              continue;
            }
            auto it = book.per_msb[r].find(s.msb);
            double msb_rru = it == book.per_msb[r].end() ? 0.0 : it->second;
            if (msb_rru + value > threshold + kEps) {
              continue;
            }
            if (value + kEps < donor_value) {
              // Simulate the swap; only capacity-whole trades qualify.
              book.Remove(r, hot, donor_value);
              book.Add(r, s.msb, value);
              bool whole = book.Shortfall(r) <= kEps;
              book.Remove(r, s.msb, value);
              book.Add(r, hot, donor_value);
              if (!whole) {
                continue;
              }
            }
            // Coolest MSB first; within it the tightest-fitting value.
            if (msb_rru < receiver_msb_rru - kEps ||
                (msb_rru < receiver_msb_rru + kEps && value < receiver_value - kEps)) {
              receiver = i;
              receiver_msb_rru = msb_rru;
              receiver_value = value;
            }
          }
          if (receiver == targets.size()) {
            continue;
          }
          const Server& to = topo.server(targets[receiver].first);
          targets[donor].second = kUnassigned;
          targets[receiver].second = spec.id;
          book.Remove(r, hot, donor_value);
          book.Add(r, to.msb, spec.ValueOfType(to.type));
          ++stats.moves_spread;
          --budget;
          swapped = true;
          break;
        }
        if (!swapped) {
          break;
        }
      }
    }
    for (size_t r = 0; r < input.reservations.size(); ++r) {
      for (const auto& [msb, rru] : book.per_msb[r]) {
        stats.spread_over_after_rru +=
            std::max(0.0, rru - threshold_of(input.reservations[r]));
      }
    }
  }

  for (size_t r = 0; r < input.reservations.size(); ++r) {
    stats.shortfall_after_rru += book.Shortfall(r);
  }
  return stats;
}

}  // namespace ras
