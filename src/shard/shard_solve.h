// Shard solve coordination: fans the per-shard solves out onto a ThreadPool
// and merges the results back into one region-wide target set plus a
// combined SolveStats.
//
// The coordinator is deliberately agnostic about *how* a shard is solved —
// the caller passes a ShardSolveFn (AsyncSolver wires in its own monolithic
// SolveSnapshot with shard_count forced to 1), which keeps src/shard free of
// a dependency cycle with src/core's solver while AsyncSolver drives it.
//
// A shard that fails (solver fault, shard-local infeasibility surfaced as an
// error) does not sink the round: its servers keep their snapshot bindings
// and the shortfall it leaves behind is handed to StitchRepair. Only when
// every shard fails does the coordinator report an error.

#ifndef RAS_SRC_SHARD_SHARD_SOLVE_H_
#define RAS_SRC_SHARD_SHARD_SOLVE_H_

#include <functional>
#include <vector>

#include "src/core/async_solver.h"
#include "src/core/assignment_decoder.h"
#include "src/core/solve_input.h"
#include "src/shard/demand_splitter.h"
#include "src/shard/shard_planner.h"

namespace ras {

// Solves one shard's sub-input, filling `decoded` with targets covering
// exactly the shard's available servers. `shard` is the plan's shard index —
// stable round-over-round for a fixed plan, which is what lets the caller
// route each shard to a persistent per-shard solver (and its resolve cache)
// so warm state follows the same shard across rounds (incumbent affinity).
using ShardSolveFn = std::function<Result<SolveStats>(
    int shard, const SolveInput& shard_input, DecodedAssignment* decoded)>;

struct ShardSolveOptions {
  // Worker threads for the fan-out; 0 = min(shard_count, hardware
  // concurrency). Shards are solved independently and results are merged in
  // shard order, so the outcome is deterministic for any thread count.
  int threads = 0;
};

struct ShardOutcomeSummary {
  int shard = 0;
  Status status;
  size_t servers = 0;
  double objective = 0.0;
  double wall_seconds = 0.0;
  double shortfall_rru = 0.0;
};

struct ShardSolveOutcome {
  // OK when at least one shard produced an assignment.
  Status status;
  // Summed phase stats across shards; total_seconds is the coordinator's
  // wall time (on one core the sum of shard times, with threads the span).
  SolveStats aggregate;
  // Union of per-shard targets (snapshot bindings for failed shards), sorted
  // by server id — one entry per available server.
  DecodedAssignment merged;
  std::vector<ShardOutcomeSummary> shards;
};

// The sub-problem a shard solves: the region input with the reservation list
// cut down to the shard's span members (reservations with a nonzero share
// there, capacity replaced by the share) and every server outside the shard
// marked unavailable (equivalence classes then simply never see them — no
// re-indexing anywhere). In-shard servers bound to a reservation outside the
// shard's span are frozen (unavailable) so the sub-solve can neither reuse
// nor churn them; the merge re-emits their snapshot bindings. Cutting the
// reservation list is where the decomposition's superlinear win comes from:
// model rows and columns are reservation-dominated, so a shard with R/K of
// the reservations solves far more than K× faster than the region.
SolveInput MakeShardInput(const SolveInput& region, const ShardPlan& plan,
                          const ShardDemand& demand, int shard);

ShardSolveOutcome SolveShards(const SolveInput& input, const ShardPlan& plan,
                              const ShardDemand& demand, const ShardSolveFn& solve_shard,
                              const ShardSolveOptions& options = {});

}  // namespace ras

#endif  // RAS_SRC_SHARD_SHARD_SOLVE_H_
