// Figure 8: allocation time % breakdown by phase and step.
//
// Paper: Phase 1 is ~60% of total allocation time and spends 67% of its time
// in the MIP step; Phase 2 spends only ~19% in MIP, with ~70% split between
// the two build steps (its problems are smaller but rack granularity makes
// building relatively expensive). Steps: RAS build, solver build, initial
// state, MIP.

#include "bench/bench_common.h"

using namespace ras;
using namespace ras::bench;

namespace {

void PrintPhaseRow(const char* name, const StepTimings& t, double grand_total) {
  double total = t.total();
  std::printf("%-8s %9.3fs (%4.1f%% of solve)\n", name, total, 100.0 * total / grand_total);
  std::printf("         ras build %8.2fms (%4.1f%%) | solver build %8.2fms (%4.1f%%)\n",
              t.ras_build_s * 1e3, 100.0 * t.ras_build_s / std::max(total, 1e-12),
              t.solver_build_s * 1e3, 100.0 * t.solver_build_s / std::max(total, 1e-12));
  std::printf("         init state%8.2fms (%4.1f%%) | MIP          %8.2fms (%4.1f%%)\n",
              t.initial_state_s * 1e3, 100.0 * t.initial_state_s / std::max(total, 1e-12),
              t.mip_s * 1e3, 100.0 * t.mip_s / std::max(total, 1e-12));
}

}  // namespace

int main() {
  PrintHeader("Figure 8: allocation time breakdown (phase x step)",
              "phase 1 ~60% of total, 67% of it in MIP; phase 2 ~19% in MIP, ~70% in builds");

  FleetOptions fleet_options;
  fleet_options.num_datacenters = 3;
  fleet_options.msbs_per_datacenter = 4;
  fleet_options.racks_per_msb = 6;
  fleet_options.servers_per_rack = 10;
  fleet_options.seed = 88;
  Fleet fleet = GenerateFleet(fleet_options);  // 2,160 servers.
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);

  Rng rng(808);
  auto profiles = MakePaperServiceProfiles();
  for (int i = 0; i < 12; ++i) {
    const ServiceProfile& p = profiles[static_cast<size_t>(i) % profiles.size()];
    ReservationSpec spec;
    spec.name = p.name + "-" + std::to_string(i);
    spec.capacity_rru = rng.Uniform(80, 260);
    spec.rru_per_type = BuildRruVector(fleet.catalog, p);
    (void)*registry.Create(spec);
  }

  // Average over a few solves with materialization in between (the first
  // solve from an empty region is unrepresentative; skip it).
  AsyncSolver solver;
  StepTimings phase1{}, phase2{};
  const int kSolves = 4;
  for (int s = 0; s < kSolves + 1; ++s) {
    auto stats = solver.SolveOnce(broker, registry, fleet.catalog);
    if (!stats.ok()) {
      std::fprintf(stderr, "solve failed\n");
      return 1;
    }
    for (ServerId id = 0; id < broker.num_servers(); ++id) {
      broker.SetCurrent(id, broker.record(id).target);
    }
    if (s == 0) {
      continue;
    }
    phase1.ras_build_s += stats->phase1.timings.ras_build_s / kSolves;
    phase1.solver_build_s += stats->phase1.timings.solver_build_s / kSolves;
    phase1.initial_state_s += stats->phase1.timings.initial_state_s / kSolves;
    phase1.mip_s += stats->phase1.timings.mip_s / kSolves;
    if (stats->phase2.ran) {
      phase2.ras_build_s += stats->phase2.timings.ras_build_s / kSolves;
      phase2.solver_build_s += stats->phase2.timings.solver_build_s / kSolves;
      phase2.initial_state_s += stats->phase2.timings.initial_state_s / kSolves;
      phase2.mip_s += stats->phase2.timings.mip_s / kSolves;
    }
  }

  double grand_total = phase1.total() + phase2.total();
  PrintPhaseRow("phase 1", phase1, grand_total);
  PrintPhaseRow("phase 2", phase2, grand_total);
  std::printf("\nMIP share: phase1 %.0f%% (paper: 67%%), phase2 %.0f%% (paper: 19%%)\n",
              100.0 * phase1.mip_s / std::max(phase1.total(), 1e-12),
              100.0 * phase2.mip_s / std::max(phase2.total(), 1e-12));
  std::printf("\nShape notes: phase 1 dominates total allocation time (paper: ~60%%) and is\n"
              "MIP-bound; this repo's build steps are leaner than production's (no RPC-fed\n"
              "fleet data, policy plugins, or audit trails), so their %% share is smaller\n"
              "than the paper's — see EXPERIMENTS.md.\n");
  return 0;
}
