// Figure 7: RAS regional allocation time distribution.
//
// Paper: over three months of production solves on a region with several
// hundred thousand servers, allocation time is tightly distributed — mean
// 1.8ks, p95 2.2ks, p99 2.45ks — comfortably inside the one-hour SLO,
// because the hardware pool changes only moderately between solves.
//
// Here: 40 consecutive solves of one synthetic region, with realistic churn
// between solves (capacity resizes, random failures/recoveries), each
// materialized before the next. The reproduced claim is the *tightness*
// (p99/mean ratio ~1.4) and staying inside the configured SLO; absolute
// times are laptop-scale seconds, not production kiloseconds.

#include "bench/bench_common.h"
#include "src/util/stats.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 7: allocation time distribution over consecutive solves",
              "mean 1.8ks, p95 2.2ks, p99 2.45ks, all under the 1-hour SLO (ratios: "
              "p95/mean=1.22, p99/mean=1.36)");

  FleetOptions fleet_options;
  fleet_options.num_datacenters = 3;
  fleet_options.msbs_per_datacenter = 4;
  fleet_options.racks_per_msb = 5;
  fleet_options.servers_per_rack = 10;
  fleet_options.seed = 777;
  Fleet fleet = GenerateFleet(fleet_options);  // 1,800 servers.
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);

  Rng rng(7070);
  auto profiles = MakePaperServiceProfiles();
  std::vector<ReservationId> services;
  for (int i = 0; i < 12; ++i) {
    const ServiceProfile& p = profiles[static_cast<size_t>(i) % profiles.size()];
    ReservationSpec spec;
    spec.name = p.name + "-" + std::to_string(i);
    spec.capacity_rru = rng.Uniform(60, 220);
    spec.rru_per_type = BuildRruVector(fleet.catalog, p);
    services.push_back(*registry.Create(spec));
  }

  AsyncSolver solver;
  const double slo_seconds = solver.config().phase1_mip.time_limit_seconds +
                             solver.config().phase2_mip.time_limit_seconds;

  std::vector<double> times;
  const int kSolves = 30;
  for (int s = 0; s < kSolves; ++s) {
    auto stats = solver.SolveOnce(broker, registry, fleet.catalog);
    if (!stats.ok()) {
      std::fprintf(stderr, "solve %d failed: %s\n", s, stats.status().ToString().c_str());
      return 1;
    }
    times.push_back(stats->total_seconds);
    // Materialize and churn moderately, like production between solves.
    for (ServerId id = 0; id < broker.num_servers(); ++id) {
      broker.SetCurrent(id, broker.record(id).target);
    }
    for (int k = 0; k < 2; ++k) {
      size_t which = static_cast<size_t>(rng.UniformInt(0, 11));
      ReservationSpec spec = *registry.Find(services[which]);
      spec.capacity_rru = std::max(30.0, spec.capacity_rru * rng.Uniform(0.92, 1.1));
      (void)registry.Update(spec);
    }
    for (int k = 0; k < 5; ++k) {
      ServerId victim = static_cast<ServerId>(
          rng.UniformInt(0, static_cast<int64_t>(broker.num_servers()) - 1));
      broker.SetUnavailability(victim, rng.Bernoulli(0.5)
                                           ? Unavailability::kUnplannedHardware
                                           : Unavailability::kNone);
    }
  }

  double mean = Mean(times);
  double p50 = Percentile(times, 50);
  double p95 = Percentile(times, 95);
  double p99 = Percentile(times, 99);
  std::printf("\n%d solves: mean=%.3fs p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs\n", kSolves,
              mean, p50, p95, p99, Percentile(times, 100));
  std::printf("ratios: p95/mean=%.2f (paper 1.22)  p99/mean=%.2f (paper 1.36)\n", p95 / mean,
              p99 / mean);
  std::printf("SLO (configured MIP budget %.0fs): %s\n", slo_seconds,
              Percentile(times, 100) <= slo_seconds ? "all solves within SLO"
                                                    : "SLO EXCEEDED");
  Histogram hist(0, Percentile(times, 100) * 1.05 + 1e-9, 12);
  for (double t : times) {
    hist.Add(t);
  }
  std::printf("\ndistribution (seconds):\n%s", hist.ToString().c_str());
  return 0;
}
