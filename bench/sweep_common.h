// Shared region-size sweep for the Figure 10 / Figure 11 scaling benches:
// builds progressively larger regions and runs the setup pipeline (snapshot,
// equivalence classes, model build, initial state) for both phases, without
// the MIP step.

#ifndef RAS_BENCH_SWEEP_COMMON_H_
#define RAS_BENCH_SWEEP_COMMON_H_

#include <memory>
#include <unordered_set>

#include "bench/bench_common.h"
#include "src/core/initial_assignment.h"

namespace ras {
namespace bench {

struct SweepRegion {
  Fleet fleet;
  std::unique_ptr<ResourceBroker> broker;
  ReservationRegistry registry;

  explicit SweepRegion(int scale) : fleet(GenerateFleet(Options(scale))) {
    broker = std::make_unique<ResourceBroker>(&fleet.topology);
    EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
    Rng rng(4242 + static_cast<uint64_t>(scale));
    auto profiles = MakePaperServiceProfiles();
    int num_services = 8 + 6 * scale;
    double budget = static_cast<double>(fleet.topology.num_servers()) * 0.7;
    for (int i = 0; i < num_services; ++i) {
      const ServiceProfile& p = profiles[static_cast<size_t>(i) % profiles.size()];
      ReservationSpec spec;
      spec.name = "svc-" + std::to_string(i);
      spec.capacity_rru = rng.Uniform(0.5, 1.5) * budget / num_services;
      spec.rru_per_type = BuildRruVector(fleet.catalog, p);
      (void)*registry.Create(spec);
    }
    // Pre-bind ~60% of servers across reservations so classes carry realistic
    // current-assignment diversity (that is what multiplies variable counts).
    SolveInput probe = SnapshotSolveInput(*broker, registry, fleet.catalog);
    size_t stride = probe.reservations.size();
    for (ServerId id = 0; id < broker->num_servers(); ++id) {
      if (id % 5 < 3) {
        broker->SetCurrent(id, probe.reservations[id % stride].id);
      }
    }
  }

  static FleetOptions Options(int scale) {
    FleetOptions opts;
    opts.num_datacenters = 2 + scale / 2;
    opts.msbs_per_datacenter = 3 + scale;
    opts.racks_per_msb = 8 + 2 * scale;
    opts.servers_per_rack = 10;
    opts.seed = 5150 + static_cast<uint64_t>(scale);
    return opts;
  }
};

struct SetupMeasurement {
  size_t phase1_vars = 0;
  size_t phase2_vars = 0;
  double phase1_setup_s = 0.0;
  double phase2_setup_s = 0.0;
  size_t phase1_model_bytes = 0;
  size_t phase2_model_bytes = 0;
  size_t phase1_full_bytes = 0;
  size_t phase2_full_bytes = 0;
  size_t servers = 0;
};

// Runs the phase-1 and phase-2 setup pipelines (no MIP) and measures them.
SetupMeasurement MeasureSetup(SweepRegion& region);

}  // namespace bench
}  // namespace ras

#endif  // RAS_BENCH_SWEEP_COMMON_H_
