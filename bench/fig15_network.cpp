// Figure 15: cross-datacenter traffic reduction from network affinity.
//
// Paper: two Presto SQL services (interactive and batch) have their data in
// specific datacenters; as the Expression-(7) affinity constraints roll out
// over two months, cross-DC traffic drops by 1.6x (interactive) and 2.3x
// (batch), balancing against the buffer-spread pressure that wants the
// service smeared across the region.
//
// Here: the same two services over an 8-week run — interactive gets a looser
// affinity at week 3, batch a tighter one at week 5 — plus background
// services competing for capacity. Weekly cross-DC traffic fraction per
// service under the compute-talks-to-data model.

#include "bench/bench_common.h"
#include "src/sim/scenario.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 15: cross-DC traffic % as affinity constraints roll out",
              "interactive Presto /1.6, batch Presto /2.3 over two months");

  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 5;
  options.fleet.racks_per_msb = 8;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 1515;
  RegionScenario sim(options);
  Rng rng(151515);

  // Background services keep the region realistically contended.
  auto profiles = MakePaperServiceProfiles();
  for (int i = 0; i < 6; ++i) {
    ReservationSpec spec;
    spec.name = "bg-" + std::to_string(i);
    spec.capacity_rru = rng.Uniform(20, 45);
    spec.rru_per_type = BuildRruVector(sim.fleet.catalog, profiles[static_cast<size_t>(i) % 5]);
    (void)*sim.registry.Create(spec);
  }

  // The two Presto services. Batch's data lives in DC 0, interactive's in DC 1.
  ReservationSpec batch;
  batch.name = "presto-batch";
  batch.capacity_rru = 40;
  batch.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
  ReservationId batch_id = *sim.registry.Create(batch);
  std::map<DatacenterId, double> batch_data = {{0, 1.0}};

  ReservationSpec interactive;
  interactive.name = "presto-interactive";
  interactive.capacity_rru = 30;
  interactive.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
  ReservationId interactive_id = *sim.registry.Create(interactive);
  std::map<DatacenterId, double> interactive_data = {{1, 1.0}};

  std::printf("%-6s %22s %22s\n", "week", "interactive cross-DC%", "batch cross-DC%");
  double interactive_before = 0, batch_before = 0, interactive_after = 0, batch_after = 0;
  for (int week = 1; week <= 8; ++week) {
    if (week == 3) {
      // Roll out a moderate affinity for interactive: most capacity near its
      // data, some room for the buffer elsewhere (the 1.6x case).
      ReservationSpec spec = *sim.registry.Find(interactive_id);
      spec.dc_affinity[1] = 1.0;
      spec.affinity_theta = 0.15;
      (void)sim.registry.Update(spec);
    }
    if (week == 5) {
      // Tighter affinity for batch: keep buffer local too (the 2.3x case).
      ReservationSpec spec = *sim.registry.Find(batch_id);
      spec.dc_affinity[0] = 1.3;
      spec.affinity_theta = 0.1;
      (void)sim.registry.Update(spec);
    }
    auto stats = sim.SolveRound();
    if (!stats.ok()) {
      std::fprintf(stderr, "solve failed in week %d\n", week);
      return 1;
    }
    double i_cross = 100.0 * sim.CrossDcTrafficFraction(interactive_id, interactive_data);
    double b_cross = 100.0 * sim.CrossDcTrafficFraction(batch_id, batch_data);
    std::printf("%-6d %22.1f %22.1f\n", week, i_cross, b_cross);
    if (week == 2) {
      interactive_before = i_cross;
      batch_before = b_cross;
    }
    if (week == 8) {
      interactive_after = i_cross;
      batch_after = b_cross;
    }
  }
  std::printf("\nreduction: interactive %.1fx (paper 1.6x), batch %.1fx (paper 2.3x)\n",
              interactive_before / std::max(interactive_after, 1e-9),
              batch_before / std::max(batch_after, 1e-9));
  return 0;
}
