// Figure 13: spread of services across MSBs.
//
// Paper: a heat-map of the top-30 services over 36 MSBs (ordered by
// deployment age). Most services spread near-uniformly; the exceptions are
// hardware-constrained: services needing the newest hardware miss the oldest
// MSBs, services preferring discontinued SKUs miss the newest ones, and an
// ML service is pinned to a single datacenter (storage bandwidth) with a
// high share in the few MSBs carrying its accelerators.
//
// Here: 20 services with the same archetypes over a 12-MSB region; one
// converged solve; we print the capacity-share matrix (percent per cell).

#include "bench/bench_common.h"
#include "src/sim/scenario.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 13: spread of services across MSBs (capacity % per cell)",
              "near-uniform spread except hardware-constrained services");

  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 6;
  options.fleet.racks_per_msb = 8;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 1313;
  RegionScenario sim(options);
  const HardwareCatalog& catalog = sim.fleet.catalog;
  Rng rng(131313);

  auto gen_only = [&catalog](int generation) {
    std::vector<double> rru(catalog.size(), 0.0);
    for (size_t t = 0; t < catalog.size(); ++t) {
      if (catalog.type(static_cast<HardwareTypeId>(t)).cpu_generation == generation &&
          !catalog.type(static_cast<HardwareTypeId>(t)).has_gpu) {
        rru[t] = catalog.type(static_cast<HardwareTypeId>(t)).compute_units;
      }
    }
    return rru;
  };

  std::vector<ReservationId> services;
  std::vector<std::string> labels;
  auto add = [&](const std::string& name, ReservationSpec spec) {
    spec.name = name;
    services.push_back(*sim.registry.Create(std::move(spec)));
    labels.push_back(name);
  };

  // Services 1-2: require the newest hardware (absent from old MSBs).
  for (int i = 1; i <= 2; ++i) {
    ReservationSpec spec;
    spec.capacity_rru = rng.Uniform(18, 26);
    spec.rru_per_type = gen_only(3);
    add("new-hw-" + std::to_string(i), spec);
  }
  // Services 3-16: ordinary, any hardware.
  auto profiles = MakePaperServiceProfiles();
  for (int i = 3; i <= 16; ++i) {
    ReservationSpec spec;
    spec.capacity_rru = rng.Uniform(15, 40);
    spec.rru_per_type = BuildRruVector(catalog, profiles[static_cast<size_t>(i) % 5]);
    add("svc-" + std::to_string(i), spec);
  }
  // Service 17: ML, GPU-only, single-datacenter (storage bandwidth).
  {
    ServiceProfile ml;
    ml.relative_value = {0, 1, 1, 1};
    ml.requires_gpu = true;
    ReservationSpec spec;
    spec.capacity_rru = 10;
    spec.rru_per_type = BuildRruVector(catalog, ml);
    spec.dc_affinity[1] = 1.2;  // GPU MSBs are the newest => DC 1.
    spec.affinity_theta = 0.2;
    add("ml-gpu", spec);
  }
  // Services 18-20: prefer discontinued SKUs (absent from new MSBs).
  for (int i = 18; i <= 20; ++i) {
    std::vector<double> rru(catalog.size(), 0.0);
    rru[catalog.FindByName("C1")] = 1.0;
    rru[catalog.FindByName("C8")] = 1.0;
    rru[catalog.FindByName("C6-S1")] = 0.95;
    ReservationSpec spec;
    spec.capacity_rru = rng.Uniform(10, 16);
    spec.rru_per_type = rru;
    add("legacy-" + std::to_string(i), spec);
  }

  // Two solve rounds to converge (second refines rack/phase-2 leftovers).
  for (int round = 0; round < 2; ++round) {
    auto stats = sim.SolveRound();
    if (!stats.ok()) {
      std::fprintf(stderr, "solve failed\n");
      return 1;
    }
  }

  // Capacity-share matrix: rows = MSBs (0 oldest), cols = services.
  const RegionTopology& topo = sim.fleet.topology;
  std::printf("%-5s", "MSB");
  for (size_t s = 0; s < services.size(); ++s) {
    std::printf("%4zu", s + 1);
  }
  std::printf("\n");
  std::vector<std::vector<double>> share(topo.num_msbs(),
                                         std::vector<double>(services.size(), 0.0));
  for (size_t s = 0; s < services.size(); ++s) {
    const ReservationSpec* spec = sim.registry.Find(services[s]);
    double total = 0.0;
    for (ServerId id : sim.broker->ServersInReservation(services[s])) {
      double v = spec->ValueOfType(topo.server(id).type);
      share[topo.server(id).msb][s] += v;
      total += v;
    }
    if (total > 0) {
      for (MsbId m = 0; m < topo.num_msbs(); ++m) {
        share[m][s] = 100.0 * share[m][s] / total;
      }
    }
  }
  for (MsbId m = 0; m < topo.num_msbs(); ++m) {
    std::printf("%-5u", m);
    for (size_t s = 0; s < services.size(); ++s) {
      if (share[m][s] < 0.05) {
        std::printf("%4s", ".");
      } else {
        std::printf("%4.0f", share[m][s]);
      }
    }
    std::printf("\n");
  }
  std::printf("\ncolumns: 1-2 newest-hw-only (miss old MSBs), 3-16 unconstrained "
              "(near-uniform),\n17 ml-gpu (single DC, GPU MSBs only), 18-20 legacy-hw "
              "(miss new MSBs)\n");

  // Uniformity summary for the unconstrained block.
  double worst_share = 0.0;
  for (size_t s = 2; s <= 13; ++s) {
    for (MsbId m = 0; m < topo.num_msbs(); ++m) {
      worst_share = std::max(worst_share, share[m][s]);
    }
  }
  std::printf("worst single-MSB share among unconstrained services: %.1f%% "
              "(uniform would be %.1f%%)\n",
              worst_share, 100.0 / static_cast<double>(topo.num_msbs()));
  return 0;
}
