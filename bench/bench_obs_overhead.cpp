// Observability overhead bench: the acceptance gate for src/obs.
//
// Runs the steady-state churn solve loop (same workload shape as
// bench_round_resolve) as a fully deterministic unit — fresh broker,
// registry, solver, and churn RNG each repetition — and repeats it
// kReps times with the metric registry + tracer enabled and kReps times
// disabled, interleaved. Two gates:
//
//   (a) parity: decoded targets must be bitwise identical across ALL
//       repetitions, obs-on and obs-off alike (instrumentation records,
//       never steers — and the loop itself is deterministic);
//   (b) overhead: comparing the best (min) steady-state wall per side —
//       min-of-k is how you measure a ~1% effect under MIP wall-time
//       jitter that is itself ~10% on event rounds — obs-on must be
//       within 2% of obs-off.
//
// Writes BENCH_obs.json (per-round walls from each side's best repetition,
// the steady-state summary with overhead_percent, and the uniform
// determinism record) plus a sample exporter snapshot
// (obs_snapshot/metrics.{prom,json}) next to the JSON, as a scraper would
// see the instrumented process.
//
// Usage: bench_obs_overhead [small] [reps=<k>] [output.json]

#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/core/async_solver.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/monotonic_time.h"
#include "src/util/rng.h"

using namespace ras;
using namespace ras::bench;

namespace {

void SetObsEnabled(bool enabled) {
  obs::MetricRegistry::Default().set_enabled(enabled);
  obs::Tracer::Default().set_enabled(enabled);
}

struct LoopResult {
  bool ok = true;
  double steady_wall_s = 0.0;              // Sum of rounds 1..N-1.
  std::vector<double> round_wall_s;        // Per-round wall, all rounds.
  // Per-round decoded targets: the parity surface.
  std::vector<std::vector<std::pair<ServerId, ReservationId>>> targets;
};

// One full deterministic solve loop over `fleet`. Everything stateful is
// local and seeded, so every invocation sees bitwise-identical inputs.
LoopResult RunLoop(const Fleet& fleet, bool obs_enabled, int rounds, int num_services) {
  SetObsEnabled(obs_enabled);
  LoopResult out;
  const size_t num_servers = fleet.topology.num_servers();
  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  Rng rng(909);
  const double budget = static_cast<double>(num_servers) * 0.35;
  for (int i = 0; i < num_services; ++i) {
    (void)*registry.Create(CountReservation(
        fleet.catalog, "svc-" + std::to_string(i),
        std::floor(rng.Uniform(0.5, 1.0) * budget / num_services + 0.5)));
  }
  const double churn_rate = 0.01;
  const size_t batch_size = std::max<size_t>(1, num_servers * 3 / 100);
  AsyncSolver solver;
  double churn_accum = 0.0;
  for (int round = 0; round < rounds; ++round) {
    if (round > 0) {
      churn_accum += churn_rate * static_cast<double>(num_servers);
      if (churn_accum >= static_cast<double>(batch_size)) {
        churn_accum -= static_cast<double>(batch_size);
        for (size_t k = 0; k < batch_size; ++k) {
          ServerId id = static_cast<ServerId>(
              rng.UniformInt(0, static_cast<int64_t>(num_servers) - 1));
          bool down = broker.record(id).unavailability != Unavailability::kNone;
          broker.SetUnavailability(id, down ? Unavailability::kNone
                                            : Unavailability::kUnplannedHardware);
        }
      }
    }
    SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
    DecodedAssignment decoded;
    const double t0 = util::MonotonicSeconds();
    auto stats = solver.SolveSnapshot(input, &decoded);
    const double wall = util::MonotonicSeconds() - t0;
    if (!stats.ok()) {
      out.ok = false;
      return out;
    }
    out.round_wall_s.push_back(wall);
    if (round > 0) {
      out.steady_wall_s += wall;
    }
    out.targets.push_back(std::move(decoded.targets));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  int reps = 5;
  std::string out_path = DefaultOutputPath("BENCH_obs.json");
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "small") == 0) {
      small = true;
    } else if (std::strncmp(argv[a], "reps=", 5) == 0) {
      reps = std::max(1, std::atoi(argv[a] + 5));
    } else {
      out_path = argv[a];
    }
  }

  PrintHeader("Observability overhead: metrics + tracing on the steady-state solve loop",
              "src/obs instrumentation is record-only and must cost < 2% steady-state "
              "wall time, with bitwise-identical solver targets obs-on vs obs-off");

  FleetOptions fleet_options;
  fleet_options.num_datacenters = 2;
  fleet_options.msbs_per_datacenter = small ? 3 : 4;
  fleet_options.racks_per_msb = small ? 6 : 12;
  fleet_options.servers_per_rack = small ? 8 : 24;
  fleet_options.seed = 4242;
  Fleet fleet = GenerateFleet(fleet_options);
  const int num_services = small ? 10 : 24;
  const int kRounds = small ? 9 : 12;
  std::printf("region: %zu servers, %d services, %d rounds, %d reps per side\n\n",
              fleet.topology.num_servers(), num_services, kRounds, reps);

  BenchJsonWriter json("obs_overhead");
  AddStandardMeta(json);
  json.Meta()
      .Set("servers", static_cast<int64_t>(fleet.topology.num_servers()))
      .Set("services", static_cast<int64_t>(num_services))
      .Set("rounds", kRounds)
      .Set("reps", reps);

  obs::Tracer::Default().Clear();
  obs::MetricRegistry::Default().ResetValues();

  // Interleave on/off repetitions so frequency drift hits both sides alike.
  // The estimator is the per-round floor: each round's min wall across reps,
  // summed over the steady rounds. Min-of-k per round discards the MIP
  // wall-time jitter (itself ~10% on event rounds) that swamps a ~1% effect
  // when whole-loop totals are compared.
  std::printf("%-6s %12s %12s\n", "rep", "on_steady_s", "off_steady_s");
  std::vector<double> round_min_on(kRounds, 0.0);
  std::vector<double> round_min_off(kRounds, 0.0);
  std::vector<std::vector<std::pair<ServerId, ReservationId>>> reference_targets;
  bool parity = true;
  for (int rep = 0; rep < reps; ++rep) {
    LoopResult on = RunLoop(fleet, /*obs_enabled=*/true, kRounds, num_services);
    LoopResult off = RunLoop(fleet, /*obs_enabled=*/false, kRounds, num_services);
    SetObsEnabled(true);
    if (!on.ok || !off.ok) {
      std::printf("rep %d FAILED\n", rep);
      return 1;
    }
    std::printf("%-6d %12.4f %12.4f\n", rep, on.steady_wall_s, off.steady_wall_s);
    // Every repetition of a deterministic loop must decode the same targets;
    // comparing on-vs-off also proves obs never steers.
    parity = parity && on.targets == off.targets;
    if (rep == 0) {
      reference_targets = std::move(on.targets);
    } else {
      parity = parity && on.targets == reference_targets;
    }
    for (int round = 0; round < kRounds; ++round) {
      if (rep == 0 || on.round_wall_s[round] < round_min_on[round]) {
        round_min_on[round] = on.round_wall_s[round];
      }
      if (rep == 0 || off.round_wall_s[round] < round_min_off[round]) {
        round_min_off[round] = off.round_wall_s[round];
      }
    }
  }

  double on_steady = 0.0;
  double off_steady = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    if (round > 0) {
      on_steady += round_min_on[round];
      off_steady += round_min_off[round];
    }
    json.AddRecord()
        .Set("config", "round-" + std::to_string(round))
        .Set("round", round)
        .Set("obs_on_wall_s", round_min_on[round])
        .Set("obs_off_wall_s", round_min_off[round]);
  }

  const int steady_rounds = kRounds - 1;
  const double overhead_percent =
      off_steady > 0.0 ? 100.0 * (on_steady - off_steady) / off_steady : 0.0;
  const bool within_budget = overhead_percent < 2.0;
  std::printf("\nsteady state (rounds 1..%d, per-round min of %d): obs-on %.4fs, "
              "obs-off %.4fs -> overhead %+.2f%% (budget 2%%: %s)\n",
              steady_rounds, reps, on_steady / steady_rounds, off_steady / steady_rounds,
              overhead_percent, within_budget ? "OK" : "EXCEEDED");
  std::printf("targets bitwise-identical across reps and obs on/off: %s\n",
              parity ? "OK" : "MISMATCH");

  json.AddRecord()
      .Set("config", "steady-state")
      .Set("rounds_measured", steady_rounds)
      .Set("obs_on_wall_s", on_steady / steady_rounds)
      .Set("obs_off_wall_s", off_steady / steady_rounds)
      .Set("overhead_percent", overhead_percent)
      .Set("overhead_within_budget", within_budget);
  AddDeterminismRecord(json, "obs-parity", parity);

  if (!json.WriteFile(out_path)) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Sample scrape of the instrumented run, written next to the JSON.
  const size_t slash = out_path.find_last_of('/');
  const std::string snapshot_dir =
      (slash == std::string::npos ? std::string(".") : out_path.substr(0, slash)) +
      "/obs_snapshot";
  Status snap = obs::WriteSnapshotFiles(obs::MetricRegistry::Default(), snapshot_dir);
  if (snap.ok()) {
    std::printf("wrote %s/metrics.{prom,json}\n", snapshot_dir.c_str());
  } else {
    std::fprintf(stderr, "snapshot write failed: %s\n", snap.ToString().c_str());
  }
  std::printf("\nsolve pipeline spans:\n%s",
              obs::Tracer::Default().DumpTree(obs::Tracer::Dump::kTimings).c_str());

  // Parity is the hard gate; the overhead number is recorded for the
  // trajectory (single-machine wall deltas at bench scale stay
  // noise-sensitive, so CI archives rather than gates on it).
  return parity ? 0 : 1;
}
