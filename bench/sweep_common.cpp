#include "bench/sweep_common.h"

#include <chrono>

namespace ras {
namespace bench {
namespace {

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SetupMeasurement MeasureSetup(SweepRegion& region) {
  SetupMeasurement out;
  out.servers = region.broker->num_servers();
  SolverConfig config;

  // ---- Phase 1 setup: snapshot -> MSB classes -> model -> initial state ----
  double t0 = Now();
  SolveInput input = SnapshotSolveInput(*region.broker, region.registry, region.fleet.catalog);
  auto classes1 = BuildEquivalenceClasses(input, Scope::kMsb);
  BuiltModel built1 = BuildRasModel(input, classes1, config, /*include_rack_spread=*/false);
  auto counts1 = BuildInitialCounts(input, classes1, built1);
  auto warm1 = MakeWarmStart(input, classes1, built1, counts1);
  out.phase1_setup_s = Now() - t0;
  out.phase1_vars = built1.num_assignment_variables();
  out.phase1_model_bytes = built1.ModelMemoryBytes();
  out.phase1_full_bytes = built1.EstimatedMemoryBytes();

  // ---- Phase 2 setup: worst 10% of reservations at rack granularity ----
  t0 = Now();
  size_t take = std::max<size_t>(1, input.reservations.size() / 10);
  std::unordered_set<ReservationId> subset_ids;
  std::vector<int> subset;
  for (size_t r = 0; r < take; ++r) {
    subset_ids.insert(input.reservations[r].id);
    subset.push_back(static_cast<int>(r));
  }
  ClassFilter filter;
  filter.reservations = &subset_ids;
  auto classes2 = BuildEquivalenceClasses(input, Scope::kRack, filter);
  BuiltModel built2 =
      BuildRasModel(input, classes2, config, /*include_rack_spread=*/true, subset);
  auto counts2 = BuildInitialCounts(input, classes2, built2);
  auto warm2 = MakeWarmStart(input, classes2, built2, counts2);
  out.phase2_setup_s = Now() - t0;
  out.phase2_vars = built2.num_assignment_variables();
  out.phase2_model_bytes = built2.ModelMemoryBytes();
  out.phase2_full_bytes = built2.EstimatedMemoryBytes();
  (void)warm1;
  (void)warm2;
  return out;
}

}  // namespace bench
}  // namespace ras
