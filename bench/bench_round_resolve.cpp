// Cross-round incremental re-solve bench: the trajectory anchor for the
// resolve cache (SolverConfig::incremental_resolve, src/core/resolve_cache).
//
// Simulates a steady-state solve loop: one region, N rounds, availability
// churn averaging a configurable fraction of the fleet per round (default
// 1%). Churn arrives the way it does in production — batched: maintenance
// drains and returns rack groups together (Section 5.3's maintenance flow),
// so at a 1% mean rate with ~3%-of-fleet batches roughly every third round
// sees an event and the rest are quiet. Quiet rounds exercise the skip-solve
// fast path; event rounds exercise delta computation, model patching, and
// incumbent shifting. Every round's snapshot is fed to TWO solvers — one
// with the resolve cache on, one strictly from scratch — and the per-round
// wall time is broken down by Figure-8 step (ras_build / solver_build /
// initial_state / mip) for both.
//
// The incremental solver must (a) produce bitwise-identical targets to the
// cold solver every round — the cache trades timings, never answers — and
// (b) beat the cold solver by >= 2x steady-state (rounds after the first,
// which is cold for both by construction).
//
// Writes BENCH_resolve.json with one record per round (both wall times, the
// step breakdowns, and the reuse telemetry: delta_servers, model_patched,
// basis_reused, solve_skipped), a steady-state summary record, and the
// uniform determinism record (cache-on vs cache-off targets compared bitwise
// across all rounds).
//
// Usage: bench_round_resolve [small] [churn=<percent>] [output.json]

#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/core/async_solver.h"
#include "src/util/rng.h"

using namespace ras;
using namespace ras::bench;

namespace {

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  double churn_rate = 0.01;  // Mean fraction of servers changed per round.
  std::string out_path = DefaultOutputPath("BENCH_resolve.json");
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "small") == 0) {
      small = true;
    } else if (std::strncmp(argv[a], "churn=", 6) == 0) {
      churn_rate = std::atof(argv[a] + 6) / 100.0;
    } else {
      out_path = argv[a];
    }
  }

  PrintHeader("Round re-solve: cross-round incremental warm state (resolve cache)",
              "Section 7 runs the solver continuously; consecutive rounds differ by "
              "~1% of server state, so patching the cached model and restarting from "
              "the cached basis/incumbent must beat a from-scratch round >= 2x with "
              "bitwise-identical targets");

  FleetOptions fleet_options;
  fleet_options.num_datacenters = 2;
  fleet_options.msbs_per_datacenter = small ? 3 : 4;
  fleet_options.racks_per_msb = small ? 6 : 12;
  fleet_options.servers_per_rack = small ? 8 : 24;
  fleet_options.seed = 4242;
  Fleet fleet = GenerateFleet(fleet_options);
  const size_t num_servers = fleet.topology.num_servers();
  std::printf("region: %zu servers, %zu racks, %u MSBs\n", num_servers,
              fleet.topology.num_racks(), fleet.topology.num_msbs());

  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  Rng rng(909);
  const int num_services = small ? 10 : 24;
  // ~35% count utilisation: comfortable supply keeps the greedy warm start at
  // the LP bound, the regime where the bound-gated fast path replaces the
  // cold root solve. Count-based reservations with integral capacities keep
  // the LP relaxation tight (no rounding gap) and the equivalence classes
  // populous, so availability churn resizes classes instead of deleting them.
  const double budget = static_cast<double>(num_servers) * 0.35;
  for (int i = 0; i < num_services; ++i) {
    (void)*registry.Create(CountReservation(
        fleet.catalog, "svc-" + std::to_string(i),
        std::floor(rng.Uniform(0.5, 1.0) * budget / num_services + 0.5)));
  }

  const int kRounds = small ? 9 : 12;
  // Maintenance batch: ~3% of the fleet drained or returned together. A
  // fractional accumulator schedules batches so the realized mean churn
  // equals the configured rate exactly (no arrival-seed luck): at 1% churn a
  // batch lands every third round and the rounds between are quiet.
  const size_t batch_size = std::max<size_t>(1, num_servers * 3 / 100);
  std::printf("rounds: %d, churn: %.1f%% mean (batches of %zu servers every %.1f rounds), "
              "services: %d\n\n",
              kRounds, 100.0 * churn_rate, batch_size,
              static_cast<double>(batch_size) /
                  (churn_rate * static_cast<double>(num_servers)),
              num_services);

  BenchJsonWriter json("round_resolve");
  AddStandardMeta(json);
  json.Meta()
      .Set("servers", static_cast<int64_t>(num_servers))
      .Set("services", static_cast<int64_t>(num_services))
      .Set("rounds", kRounds)
      .Set("churn_rate", churn_rate)
      .Set("churn_batch_servers", static_cast<int64_t>(batch_size));

  SolverConfig inc_config;
  inc_config.incremental_resolve = true;
  // Seed the fallback MIP's root LP from the cached basis (the dual-simplex
  // warm re-solve path). Parity is not assumed from the flag: the bench's own
  // targets_match assertion compares every round bitwise against the cold
  // solver, and any divergence fails the run.
  inc_config.resolve_strict_parity = false;
  SolverConfig cold_config;
  cold_config.incremental_resolve = false;
  // Latency tuning, opted into identically on both pipelines so the cold
  // baseline stays honest (the speedup is never tuned vs untuned). The RAS
  // LP relaxation keeps a structural integer-ceil gap to any incumbent, so
  // the B&B spends its node budget failing to beat the warm incumbent; one
  // non-improving node is ample patience for this bench's count-based
  // reservations (the depth-<=2 rounding heuristic lands its improvement at
  // the first node). Likewise the greedy start is already move-minimal here
  // — polish accepts nothing across the whole run — so its proposal budget
  // is cut to a token patience.
  for (SolverConfig* cfg : {&inc_config, &cold_config}) {
    cfg->phase1_mip.stall_node_limit = 1;
    cfg->phase2_mip.stall_node_limit = 1;
    cfg->polish_stall_limit = 256;
  }
  AsyncSolver inc_solver(inc_config);
  AsyncSolver cold_solver(cold_config);

  std::printf("%-6s %6s %8s %8s %8s %9s %-14s\n", "round", "delta", "cold_s", "inc_s",
              "speedup", "targets", "reuse");
  bool all_match = true;
  // Smoke-mode regression guard: on any churn round (delta_servers > 0) the
  // incremental solver must not run slower than 1.1x the cold solver — the
  // warm path regressing below cold on exactly the rounds it exists for.
  bool smoke_regression = false;
  double cold_steady = 0.0;
  double inc_steady = 0.0;
  int64_t dual_resolves_total = 0;
  int64_t dual_iterations_total = 0;
  double churn_accum = 0.0;
  size_t churned_servers = 0;
  StepTimings cold_steps;
  StepTimings inc_steps;
  for (int round = 0; round < kRounds; ++round) {
    if (round > 0) {
      churn_accum += churn_rate * static_cast<double>(num_servers);
      if (churn_accum >= static_cast<double>(batch_size)) {
        churn_accum -= static_cast<double>(batch_size);
        churned_servers += batch_size;
        // A maintenance batch lands: flip availability of a random server
        // group (drain healthy servers, return drained ones).
        for (size_t k = 0; k < batch_size; ++k) {
          ServerId id = static_cast<ServerId>(
              rng.UniformInt(0, static_cast<int64_t>(num_servers) - 1));
          bool down = broker.record(id).unavailability != Unavailability::kNone;
          broker.SetUnavailability(id, down ? Unavailability::kNone
                                            : Unavailability::kUnplannedHardware);
        }
      }
    }
    SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);

    DecodedAssignment cold_decoded;
    double t0 = WallNow();
    auto cold_stats = cold_solver.SolveSnapshot(input, &cold_decoded);
    double cold_wall = WallNow() - t0;
    DecodedAssignment inc_decoded;
    t0 = WallNow();
    auto inc_stats = inc_solver.SolveSnapshot(input, &inc_decoded);
    double inc_wall = WallNow() - t0;
    if (!cold_stats.ok() || !inc_stats.ok()) {
      std::printf("round %d FAILED: %s / %s\n", round,
                  cold_stats.status().ToString().c_str(),
                  inc_stats.status().ToString().c_str());
      return 1;
    }
    const bool match = inc_decoded.targets == cold_decoded.targets;
    all_match = all_match && match;
    // Phase-1 telemetry: phase 2 re-selects its worst-offender subset every
    // round, so its cache entry legitimately misses under churn; phase 1 is
    // where the region-wide reuse story lives.
    const char* reuse = inc_stats->phase1.solve_skipped  ? "skipped"
                        : inc_stats->phase1.basis_reused ? "patched+basis"
                        : inc_stats->phase1.model_patched ? "patched"
                                                          : "cold";
    double speedup = inc_wall > 0.0 ? cold_wall / inc_wall : 1.0;
    std::printf("%-6d %6d %8.3f %8.3f %7.2fx %9s %-14s dual=%lld/%lld\n", round,
                inc_stats->delta_servers, cold_wall, inc_wall, speedup,
                match ? "match" : "MISMATCH", reuse,
                static_cast<long long>(inc_stats->dual_resolves),
                static_cast<long long>(inc_stats->dual_iterations));
    if (small && inc_stats->delta_servers > 0 && inc_wall > 1.1 * cold_wall) {
      std::printf("  ^ SMOKE REGRESSION: churn round ran %.2fx the cold wall "
                  "(limit 1.10x)\n", inc_wall / cold_wall);
      smoke_regression = true;
    }
    dual_resolves_total += inc_stats->dual_resolves;
    dual_iterations_total += inc_stats->dual_iterations;
    auto add_steps = [](StepTimings& acc, const SolveStats& s) {
      acc.ras_build_s += s.phase1.timings.ras_build_s + s.phase2.timings.ras_build_s;
      acc.solver_build_s +=
          s.phase1.timings.solver_build_s + s.phase2.timings.solver_build_s;
      acc.initial_state_s +=
          s.phase1.timings.initial_state_s + s.phase2.timings.initial_state_s;
      acc.mip_s += s.phase1.timings.mip_s + s.phase2.timings.mip_s;
    };
    if (round > 0) {
      cold_steady += cold_wall;
      inc_steady += inc_wall;
      add_steps(cold_steps, *cold_stats);
      add_steps(inc_steps, *inc_stats);
    }
    json.AddRecord()
        .Set("config", "round-" + std::to_string(round))
        .Set("round", round)
        .Set("cold_wall_s", cold_wall)
        .Set("incremental_wall_s", inc_wall)
        .Set("speedup", speedup)
        .Set("targets_match", match)
        .Set("delta_servers", inc_stats->delta_servers)
        .Set("model_patched", inc_stats->phase1.model_patched)
        .Set("basis_reused", inc_stats->phase1.basis_reused)
        .Set("solve_skipped", inc_stats->phase1.solve_skipped)
        .Set("dual_resolves", inc_stats->dual_resolves)
        .Set("dual_iterations", inc_stats->dual_iterations)
        .Set("presolve_rows_removed", inc_stats->presolve_rows_removed)
        .Set("cold_presolve_rows_removed", cold_stats->presolve_rows_removed)
        .Set("cold_solver_build_s",
             cold_stats->phase1.timings.solver_build_s +
                 cold_stats->phase2.timings.solver_build_s)
        .Set("incremental_solver_build_s",
             inc_stats->phase1.timings.solver_build_s +
                 inc_stats->phase2.timings.solver_build_s)
        .Set("cold_mip_s",
             cold_stats->phase1.timings.mip_s + cold_stats->phase2.timings.mip_s)
        .Set("incremental_mip_s",
             inc_stats->phase1.timings.mip_s + inc_stats->phase2.timings.mip_s)
        .Set("cold_nodes", cold_stats->phase1.nodes + cold_stats->phase2.nodes)
        .Set("incremental_nodes", inc_stats->phase1.nodes + inc_stats->phase2.nodes)
        .Set("incremental_p1_mip_s", inc_stats->phase1.timings.mip_s)
        .Set("incremental_p2_mip_s", inc_stats->phase2.timings.mip_s)
        .Set("p2_model_patched", inc_stats->phase2.model_patched)
        .Set("p2_basis_reused", inc_stats->phase2.basis_reused);
  }

  const int steady_rounds = kRounds - 1;
  double steady_speedup =
      inc_steady > 0.0 ? cold_steady / inc_steady : 1.0;
  double realized_churn = static_cast<double>(churned_servers) /
                          (static_cast<double>(steady_rounds) *
                           static_cast<double>(num_servers));
  std::printf("\nsteady state (rounds 1..%d, realized churn %.2f%%/round): "
              "cold %.3fs, incremental %.3fs -> %.2fx\n",
              kRounds - 1, 100.0 * realized_churn, cold_steady / steady_rounds,
              inc_steady / steady_rounds, steady_speedup);
  std::printf("  figure-8 steps, cold:        build=%.3fs initial=%.3fs mip=%.3fs\n",
              cold_steps.solver_build_s / steady_rounds,
              cold_steps.initial_state_s / steady_rounds, cold_steps.mip_s / steady_rounds);
  std::printf("  figure-8 steps, incremental: build=%.3fs initial=%.3fs mip=%.3fs\n",
              inc_steps.solver_build_s / steady_rounds,
              inc_steps.initial_state_s / steady_rounds, inc_steps.mip_s / steady_rounds);
  std::printf("dual simplex: %lld warm re-solves, %lld dual pivots across the run\n",
              static_cast<long long>(dual_resolves_total),
              static_cast<long long>(dual_iterations_total));
  std::printf("targets bitwise-identical across all rounds: %s\n",
              all_match ? "OK" : "MISMATCH");

  json.AddRecord()
      .Set("config", "steady-state")
      .Set("rounds_measured", steady_rounds)
      .Set("realized_churn_per_round", realized_churn)
      .Set("cold_wall_s", cold_steady / steady_rounds)
      .Set("incremental_wall_s", inc_steady / steady_rounds)
      .Set("speedup", steady_speedup)
      .Set("cold_solver_build_s", cold_steps.solver_build_s / steady_rounds)
      .Set("incremental_solver_build_s", inc_steps.solver_build_s / steady_rounds)
      .Set("cold_initial_state_s", cold_steps.initial_state_s / steady_rounds)
      .Set("incremental_initial_state_s", inc_steps.initial_state_s / steady_rounds)
      .Set("cold_mip_s", cold_steps.mip_s / steady_rounds)
      .Set("incremental_mip_s", inc_steps.mip_s / steady_rounds)
      .Set("dual_resolves", dual_resolves_total)
      .Set("dual_iterations", dual_iterations_total);
  AddDeterminismRecord(json, "cache-parity", all_match);

  if (!json.WriteFile(out_path)) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (smoke_regression) {
    std::printf("FAIL: a churn round's incremental wall exceeded 1.1x cold\n");
  }
  return (all_match && !smoke_regression) ? 0 : 1;
}
