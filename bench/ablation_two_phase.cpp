// Ablation: two-phase solving (Section 3.5.2, "Phased solving").
//
// Paper: phase 1 ignores rack goals region-wide; phase 2 re-solves at rack
// granularity only for the worst ~10% of reservations. A single unphased
// rack-granularity problem would be ~10x larger. This bench measures, on one
// region: (a) the rack-overflow objective after phase 1 alone vs after both
// phases, and (b) the variable counts of phase 1, phase 2, and a
// hypothetical unphased rack-granularity solve.

#include "bench/bench_common.h"
#include "src/sim/scenario.h"

using namespace ras;
using namespace ras::bench;

namespace {

// Total rack-level overflow RRUs across reservations for the current targets.
double RackOverflowOfTargets(const RegionScenario& sim, const SolverConfig& config) {
  const RegionTopology& topo = sim.fleet.topology;
  double total_overflow = 0.0;
  for (const ReservationSpec* spec : sim.registry.AllSolvable()) {
    std::map<RackId, double> rack_rru;
    for (ServerId id = 0; id < sim.broker->num_servers(); ++id) {
      if (sim.broker->record(id).target != spec->id) {
        continue;
      }
      rack_rru[topo.server(id).rack] += spec->ValueOfType(topo.server(id).type);
    }
    double alpha_k = config.rack_alpha_factor / static_cast<double>(topo.num_racks());
    double threshold = std::max(alpha_k * spec->capacity_rru, config.min_spread_threshold_rru);
    for (const auto& [rack, rru] : rack_rru) {
      total_overflow += std::max(0.0, rru - threshold);
    }
  }
  return total_overflow;
}

ScenarioOptions MakeOptions(bool enable_phase2) {
  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 4;
  options.fleet.racks_per_msb = 8;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 4242;
  if (!enable_phase2) {
    options.solver.phase2_reservation_percent = 0.0;  // Effectively disables it...
    options.solver.phase2_max_assignment_vars = 1;    // ...belt and braces.
  }
  return options;
}

void RunVariant(bool enable_phase2, double* overflow, size_t* p1_vars, size_t* p2_vars) {
  RegionScenario sim(MakeOptions(enable_phase2));
  Rng rng(424242);
  for (int i = 0; i < 8; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = rng.Uniform(25, 50);
    spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
    (void)*sim.registry.Create(spec);
  }
  auto stats = sim.SolveRound();
  if (!stats.ok()) {
    std::fprintf(stderr, "solve failed\n");
    exit(1);
  }
  *overflow = RackOverflowOfTargets(sim, sim.solver.config());
  *p1_vars = stats->phase1.assignment_variables;
  *p2_vars = stats->phase2.ran ? stats->phase2.assignment_variables : 0;
}

}  // namespace

int main() {
  PrintHeader("Ablation: two-phase solving — rack objective and problem size",
              "phase 2 fixes the worst rack offenders; unphased rack-granularity is ~10x bigger");

  double overflow_p1only = 0, overflow_both = 0;
  size_t p1_vars = 0, p2_vars = 0, dummy1 = 0, dummy2 = 0;
  RunVariant(false, &overflow_p1only, &p1_vars, &dummy1);
  RunVariant(true, &overflow_both, &dummy2, &p2_vars);

  std::printf("rack-overflow RRUs after phase 1 only:   %8.1f\n", overflow_p1only);
  std::printf("rack-overflow RRUs after both phases:    %8.1f  (%.0f%% reduction)\n",
              overflow_both,
              100.0 * (1.0 - overflow_both / std::max(overflow_p1only, 1e-9)));

  // Hypothetical single-phase problem: rack-granularity classes for ALL
  // reservations at once.
  RegionScenario sim(MakeOptions(true));
  Rng rng(424242);
  for (int i = 0; i < 8; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = rng.Uniform(25, 50);
    spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
    (void)*sim.registry.Create(spec);
  }
  SolveInput input = SnapshotSolveInput(*sim.broker, sim.registry, sim.fleet.catalog);
  auto rack_classes = BuildEquivalenceClasses(input, Scope::kRack);
  BuiltModel unphased = BuildRasModel(input, rack_classes, sim.solver.config(),
                                      /*include_rack_spread=*/true);
  std::printf("\nassignment variables: phase 1 = %zu, phase 2 subset = %zu, hypothetical\n"
              "unphased rack-granularity = %zu (%.1fx phase 1) — the blowup two-phase\n"
              "solving avoids (paper: >=10x).\n",
              p1_vars, p2_vars, unphased.num_assignment_variables(),
              static_cast<double>(unphased.num_assignment_variables()) /
                  static_cast<double>(std::max<size_t>(1, p1_vars)));
  return 0;
}
