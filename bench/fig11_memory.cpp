// Figure 11: solver memory vs the number of assignment variables.
//
// Paper: memory grows linearly with assignment variables for both phases
// (up to ~24GB at 6M vars); extrapolating to an unphased full problem gives
// ~75GB, another motivation for two-phase solving.
//
// Here: the same region sweep as Figure 10. "model bytes" (the MIP instance:
// variables, rows, nonzeros, decode maps) is the quantity comparable to the
// paper and is linear in assignment variables. We also print the full
// working set including this repo's dense basis inverse, which is quadratic
// in rows — an artifact of the from-scratch LP engine (commercial solvers
// keep sparse factorizations), documented in EXPERIMENTS.md.

#include "bench/sweep_common.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 11: solver memory vs assignment variables",
              "memory linear in assignment variables for both phases");

  std::printf("%-6s %9s | %10s %14s %14s | %10s %14s\n", "scale", "servers", "p1 vars",
              "p1 model MB", "bytes/var", "p2 vars", "p2 model MB");
  double first_ratio = 0.0;
  double last_ratio = 0.0;
  for (int scale = 0; scale <= 5; ++scale) {
    SweepRegion region(scale);
    SetupMeasurement m = MeasureSetup(region);
    double ratio =
        static_cast<double>(m.phase1_model_bytes) / std::max<size_t>(1, m.phase1_vars);
    if (scale == 0) {
      first_ratio = ratio;
    }
    last_ratio = ratio;
    std::printf("%-6d %9zu | %10zu %14.2f %14.0f | %10zu %14.2f\n", scale, m.servers,
                m.phase1_vars, m.phase1_model_bytes / 1048576.0, ratio, m.phase2_vars,
                m.phase2_model_bytes / 1048576.0);
  }
  std::printf("\nlinearity: phase-1 bytes/var at the smallest vs largest scale: %.0f vs %.0f\n",
              first_ratio, last_ratio);
  std::printf("(flat bytes/var == linear growth, the paper's Figure 11 shape)\n");

  SweepRegion biggest(5);
  SetupMeasurement m = MeasureSetup(biggest);
  std::printf("\nfull working set incl. dense basis inverse (this repo's LP engine):\n"
              "  phase 1: %.1f MB, phase 2: %.1f MB — the quadratic basis term is why this\n"
              "  reproduction keeps regions laptop-sized; see EXPERIMENTS.md.\n",
              m.phase1_full_bytes / 1048576.0, m.phase2_full_bytes / 1048576.0);
  return 0;
}
