// Figure 4: requested capacity vs the number of hardware types that can
// fulfill it.
//
// Paper: requests span 1 to >10,000 units (log scale); the majority sit in
// the few-hundred-to-few-thousand band; the fan-out over acceptable hardware
// types is trimodal (1 type = latest generation only, a dominant ~8-type
// mode, and a small 10-12-type tail). We draw 2,000 synthetic requests and
// print the same scatter as a (fan-out x size-decade) count table.

#include <array>
#include <map>

#include "bench/bench_common.h"
#include "src/fleet/request_gen.h"
#include "src/util/stats.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 4: Requested capacity vs #hardware types that can fulfill it",
              "sizes 1..30k units log-scale, majority a few hundred to a few thousand; "
              "trimodal type fan-out");

  HardwareCatalog catalog = MakePaperCatalog();
  RequestGenOptions options;
  options.count = 2000;
  options.seed = 4;
  auto requests = GenerateRequests(catalog, options);

  // Rows: size decades. Columns: acceptable-type count.
  const char* decade_names[] = {"1-9", "10-99", "100-999", "1k-9.9k", "10k+"};
  std::map<size_t, std::array<int, 5>> table;  // fan-out -> per-decade counts.
  for (const auto& r : requests) {
    int decade = 0;
    if (r.units >= 10000) {
      decade = 4;
    } else if (r.units >= 1000) {
      decade = 3;
    } else if (r.units >= 100) {
      decade = 2;
    } else if (r.units >= 10) {
      decade = 1;
    }
    auto [it, inserted] = table.try_emplace(r.acceptable_types.size());
    if (inserted) {
      it->second = {0, 0, 0, 0, 0};
    }
    it->second[static_cast<size_t>(decade)]++;
  }

  std::printf("%-12s", "types\\units");
  for (const char* d : decade_names) {
    std::printf("%10s", d);
  }
  std::printf("%10s\n", "total");
  for (const auto& [fanout, counts] : table) {
    std::printf("%-12zu", fanout);
    int total = 0;
    for (int c : counts) {
      std::printf("%10d", c);
      total += c;
    }
    std::printf("%10d\n", total);
  }

  std::vector<double> sizes;
  for (const auto& r : requests) {
    sizes.push_back(r.units);
  }
  std::printf("\nsize percentiles: p10=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
              Percentile(sizes, 10), Percentile(sizes, 50), Percentile(sizes, 90),
              Percentile(sizes, 99), Percentile(sizes, 100));
  int single = 0, wide = 0;
  for (const auto& r : requests) {
    single += r.acceptable_types.size() == 1;
    wide += r.acceptable_types.size() >= 10;
  }
  std::printf("single-type (latest-gen-only) requests: %.0f%%; 10+ type requests: %.0f%%\n",
              100.0 * single / requests.size(), 100.0 * wide / requests.size());
  return 0;
}
