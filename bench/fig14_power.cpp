// Figure 14: power-usage variance across MSBs as RAS rolls out.
//
// Paper: over four months of progressive enablement, RAS's spread objectives
// cut the normalized power variance across MSBs from ~0.9 to ~0.2, and lift
// the hottest MSB's power headroom from near zero to 11% — the same rules
// that improve failure-domain spread balance power.
//
// Here: a region starts with every service greedily packed into the oldest
// MSBs (hot) and is migrated to RAS over four simulated months; each month
// we print the power variance normalized to month 0 and the hottest MSB's
// headroom. Running containers load each service's servers so power tracks
// placement.

#include <algorithm>

#include "bench/bench_common.h"
#include "src/sim/scenario.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 14: normalized power variance across MSBs over four months",
              "variance ~0.9 -> ~0.2; hottest-MSB headroom ~0% -> 11%");

  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 6;
  options.fleet.racks_per_msb = 8;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 1414;
  RegionScenario sim(options);
  Rng rng(141414);

  // Ten legacy services, greedily packed (deployment order => oldest MSBs).
  std::vector<ReservationId> services;
  std::vector<HardwareTypeId> any;
  for (size_t t = 0; t < sim.fleet.catalog.size(); ++t) {
    any.push_back(static_cast<HardwareTypeId>(t));
  }
  for (int i = 0; i < 10; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = rng.Uniform(30, 55);
    spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
    spec.externally_managed = true;
    ReservationId id = *sim.registry.Create(spec);
    services.push_back(id);
    sim.greedy->Grow(id, any, static_cast<size_t>(spec.capacity_rru * 1.1));
    // Load the service: containers make its servers draw full power.
    JobSpec job;
    job.name = spec.name + "-job";
    job.reservation = id;
    job.container = ContainerSpec{24.0, 48.0};
    job.replicas = static_cast<int>(spec.capacity_rru);
    (void)*sim.twine->SubmitJob(job);
  }

  auto hottest_headroom = [&sim]() {
    const RegionTopology& topo = sim.fleet.topology;
    std::vector<double> peak(topo.num_msbs(), 0.0);
    for (const Server& s : topo.servers()) {
      peak[s.msb] += sim.fleet.catalog.type(s.type).power_watts;
    }
    std::vector<double> draw = sim.MsbPowerDraw();
    double min_headroom = 1.0;
    for (size_t m = 0; m < draw.size(); ++m) {
      if (peak[m] > 0) {
        min_headroom = std::min(min_headroom, 1.0 - draw[m] / peak[m]);
      }
    }
    return min_headroom;
  };

  double baseline_variance = sim.PowerUtilizationVariance();
  std::printf("%-8s %10s %20s %18s\n", "month", "ras-svcs", "normalized variance",
              "hottest headroom%");
  std::printf("%-8d %10d %20.2f %18.1f\n", 0, 0, 1.0, 100.0 * hottest_headroom());

  size_t migrated = 0;
  for (int month = 1; month <= 4; ++month) {
    // Migrate ~a third of the remaining services each month.
    size_t to_migrate = month == 4 ? services.size() - migrated : services.size() / 3;
    for (size_t k = 0; k < to_migrate && migrated < services.size(); ++k, ++migrated) {
      ReservationSpec spec = *sim.registry.Find(services[migrated]);
      spec.externally_managed = false;
      (void)sim.registry.Update(spec);
    }
    // Two solve rounds per month (the continuous hourly loop, compressed).
    for (int round = 0; round < 2; ++round) {
      auto stats = sim.SolveRound();
      if (!stats.ok()) {
        std::fprintf(stderr, "solve failed in month %d\n", month);
        return 1;
      }
    }
    std::printf("%-8d %10zu %20.2f %18.1f\n", month, migrated,
                sim.PowerUtilizationVariance() / std::max(baseline_variance, 1e-12),
                100.0 * hottest_headroom());
  }
  std::printf("\n(paper: variance 0.9 -> 0.2 normalized, headroom ~0%% -> 11%%)\n");
  return 0;
}
