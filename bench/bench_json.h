// Common JSON emitter for benchmark regression artifacts.
//
// Benches that participate in the perf trajectory write a BENCH_<name>.json
// file: a flat array of records, one per measured configuration, so CI can
// archive them and successive runs can be diffed mechanically. The format is
// deliberately boring — no nesting beyond one object per record, numbers as
// %.6g, insertion order preserved.

#ifndef RAS_BENCH_BENCH_JSON_H_
#define RAS_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace ras {
namespace bench {

// One flat JSON object; fields keep insertion order.
class JsonRecord {
 public:
  JsonRecord& Set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
    return *this;
  }
  JsonRecord& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonRecord& Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRecord& Set(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JsonRecord& Set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Accumulates records and writes `{"bench": ..., "records": [...]}`.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : bench_(std::move(bench_name)) {}

  JsonRecord& AddRecord() {
    records_.emplace_back();
    return records_.back();
  }

  // Returns false (and prints to stderr) if the file cannot be written.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n", bench_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", records_[i].ToString().c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::vector<JsonRecord> records_;
};

}  // namespace bench
}  // namespace ras

#endif  // RAS_BENCH_BENCH_JSON_H_
