// Common JSON emitter for benchmark regression artifacts.
//
// Benches that participate in the perf trajectory write a BENCH_<name>.json
// file: a flat array of records, one per measured configuration, so CI can
// archive them and successive runs can be diffed mechanically. The format is
// deliberately boring — no nesting beyond one object per record, numbers as
// %.6g, insertion order preserved.

#ifndef RAS_BENCH_BENCH_JSON_H_
#define RAS_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/utsname.h>

#include "src/util/file_io.h"

namespace ras {
namespace bench {

// One flat JSON object; fields keep insertion order.
class JsonRecord {
 public:
  JsonRecord& Set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
    return *this;
  }
  JsonRecord& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonRecord& Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRecord& Set(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JsonRecord& Set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Accumulates records and writes
// `{"bench": ..., <meta fields>, "records": [...]}`.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : bench_(std::move(bench_name)) {}

  // Top-level fields alongside "bench" — the shared schema (host, threads,
  // build) lives here so every BENCH_*.json is mechanically comparable.
  JsonRecord& Meta() { return meta_; }

  JsonRecord& AddRecord() {
    records_.emplace_back();
    return records_.back();
  }

  // Atomic (temp + rename): an interrupted bench leaves the previous
  // artifact intact, never a half-written JSON file. Returns false (and
  // prints to stderr) if the file cannot be written.
  bool WriteFile(const std::string& path) const {
    std::string out = "{\n  \"bench\": \"" + bench_ + "\",\n";
    std::string meta = meta_.ToString();
    if (meta.size() > 2) {  // More than the empty "{}".
      out += "  " + std::string(meta.begin() + 1, meta.end() - 1) + ",\n";
    }
    out += "  \"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out += "    " + records_[i].ToString() + (i + 1 < records_.size() ? "," : "") + "\n";
    }
    out += "  ]\n}\n";
    Status written = AtomicWriteFile(path, out);
    if (!written.ok()) {
      std::fprintf(stderr, "bench_json: %s\n", written.ToString().c_str());
      return false;
    }
    return true;
  }

 private:
  std::string bench_;
  JsonRecord meta_;
  std::vector<JsonRecord> records_;
};

// --- Shared schema, used by every trajectory bench ---

// Host, thread, and build-type fields common to every BENCH_*.json.
inline void AddStandardMeta(BenchJsonWriter& writer) {
  struct utsname un;
  const char* host = "unknown";
  const char* machine = "unknown";
  if (uname(&un) == 0) {
    host = un.nodename;
    machine = un.machine;
  }
  writer.Meta()
      .Set("host", host)
      .Set("machine", machine)
      .Set("hardware_threads", static_cast<int64_t>(std::thread::hardware_concurrency()))
#ifdef NDEBUG
      .Set("build", "release");
#else
      .Set("build", "debug");
#endif
}

// The uniform determinism record: every trajectory bench re-runs its
// reference configuration and reports whether the outputs matched bitwise.
inline void AddDeterminismRecord(BenchJsonWriter& writer, const char* config,
                                 bool deterministic) {
  writer.AddRecord()
      .Set("config", std::string("determinism-check-") + config)
      .Set("deterministic", deterministic);
}

// Default output location: the repo root (RAS_BENCH_OUTPUT_DIR is injected
// by bench/CMakeLists.txt as CMAKE_SOURCE_DIR), so successive runs
// accumulate BENCH_*.json next to each other regardless of the build dir the
// binary runs from. An explicit CLI path still overrides.
#ifndef RAS_BENCH_OUTPUT_DIR
#define RAS_BENCH_OUTPUT_DIR "."
#endif
inline std::string DefaultOutputPath(const char* filename) {
  return std::string(RAS_BENCH_OUTPUT_DIR) + "/" + filename;
}

}  // namespace bench
}  // namespace ras

#endif  // RAS_BENCH_BENCH_JSON_H_
