// Figure 3: relative value gained across services and processor generations.
//
// Paper: Web gains 1.47x / 1.82x on generations II / III; DataStore gains
// nothing; Feed gains on one generation but not the next; the fleet average
// gains substantially. We print the same table from the service profiles and
// show the resulting per-SKU RRU values that feed the solver.

#include "bench/bench_common.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 3: Relative value across services x processor generations",
              "Web: 1.00 / 1.47 / 1.82; DataStore flat; Feed1 gains gen II only");

  HardwareCatalog catalog = MakePaperCatalog();
  auto profiles = MakePaperServiceProfiles();

  std::printf("%-12s %10s %10s %10s\n", "Service", "Gen I", "Gen II", "Gen III");
  for (const ServiceProfile& p : profiles) {
    std::printf("%-12s %10.2f %10.2f %10.2f\n", p.name.c_str(), p.relative_value[1],
                p.relative_value[2], p.relative_value[3]);
  }

  std::printf("\nResulting RRU value per server (relative value x SKU compute units):\n");
  std::printf("%-12s", "Service");
  std::vector<HardwareTypeId> sample = {catalog.FindByName("C1"), catalog.FindByName("C2-S1"),
                                        catalog.FindByName("C3"), catalog.FindByName("C4-S3")};
  for (HardwareTypeId t : sample) {
    std::printf("%10s", catalog.type(t).name.c_str());
  }
  std::printf("\n");
  for (const ServiceProfile& p : profiles) {
    std::vector<double> rru = BuildRruVector(catalog, p);
    std::printf("%-12s", p.name.c_str());
    for (HardwareTypeId t : sample) {
      std::printf("%10.2f", rru[t]);
    }
    std::printf("\n");
  }
  std::printf("\nA Web reservation fulfilled with C3 servers needs 1.82x fewer of them\n"
              "than with C1 servers; a DataStore reservation sees no difference beyond\n"
              "the SKU baseline. This is what makes capacity fungible across SKUs.\n");
  return 0;
}
