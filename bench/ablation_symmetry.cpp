// Ablation: symmetry exploitation (Section 3.5.2, "Exploit symmetry").
//
// Paper: merging servers whose assignment variables have identical
// coefficients into a single integer variable is what keeps the MIP at
// ~10M variables instead of the raw |servers| x |reservations| product
// (their 200M example). This bench quantifies the same compression on
// synthetic regions: raw x_{s,r} variables vs equivalence-class variables
// at phase-1 (MSB) and phase-2 (rack) granularity.

#include "bench/sweep_common.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Ablation: symmetry reduction — raw vs equivalence-class variables",
              "without symmetry the MIP would be orders of magnitude larger (Sec 3.5.2)");

  // Fixed topology shape (8 MSBs, 10 reservations), increasing *density*:
  // symmetry compression scales with servers per (MSB, SKU, binding) cell,
  // which is why it is decisive at production scale (thousands of servers
  // per MSB) and why the raw formulation explodes first.
  std::printf("%-10s %9s | %14s %14s %9s | %14s %9s\n", "srv/rack", "servers",
              "raw x[s][r]", "msb vars", "factor", "rack vars", "factor");
  for (int depth = 1; depth <= 5; ++depth) {
    FleetOptions fleet_options;
    fleet_options.num_datacenters = 2;
    fleet_options.msbs_per_datacenter = 4;
    fleet_options.racks_per_msb = 8;
    fleet_options.servers_per_rack = 8 * depth * depth;
    fleet_options.seed = 777;
    Fleet fleet = GenerateFleet(fleet_options);
    ResourceBroker broker(&fleet.topology);
    ReservationRegistry registry;
    Rng rng(77);
    for (int i = 0; i < 10; ++i) {
      ReservationSpec spec;
      spec.name = "svc-" + std::to_string(i);
      spec.capacity_rru = rng.Uniform(0.02, 0.06) * static_cast<double>(fleet.num_servers());
      spec.rru_per_type.assign(fleet.catalog.size(), 1.0);
      ReservationId id = *registry.Create(spec);
      // Bind a block of servers so classes carry binding diversity.
      for (ServerId s = static_cast<ServerId>(i * fleet.num_servers() / 20);
           s < (i + 1) * fleet.num_servers() / 20; ++s) {
        broker.SetCurrent(s, id);
      }
    }
    SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);

    // Raw formulation: one boolean per (available server, compatible
    // reservation) pair.
    size_t raw = 0;
    for (ServerId id = 0; id < input.servers.size(); ++id) {
      if (!input.servers[id].available) {
        continue;
      }
      HardwareTypeId type = fleet.topology.server(id).type;
      for (const ReservationSpec& spec : input.reservations) {
        raw += spec.ValueOfType(type) > 0 ? 1 : 0;
      }
    }

    auto count_vars = [&input](const std::vector<EquivalenceClass>& classes) {
      size_t vars = 0;
      for (const EquivalenceClass& cls : classes) {
        for (const ReservationSpec& spec : input.reservations) {
          vars += spec.ValueOfType(cls.type) > 0 ? 1 : 0;
        }
      }
      return vars;
    };
    size_t msb_vars = count_vars(BuildEquivalenceClasses(input, Scope::kMsb));
    size_t rack_vars = count_vars(BuildEquivalenceClasses(input, Scope::kRack));

    std::printf("%-10d %9zu | %14zu %14zu %8.1fx | %14zu %8.1fx\n",
                fleet_options.servers_per_rack, input.servers.size(), raw, msb_vars,
                static_cast<double>(raw) / static_cast<double>(std::max<size_t>(1, msb_vars)),
                rack_vars,
                static_cast<double>(raw) / static_cast<double>(std::max<size_t>(1, rack_vars)));
  }
  std::printf("\nPhase 1 drops rack goals precisely because MSB-level classes compress\n"
              "so much harder than rack-level ones — the paper's two-phase rationale.\n");
  return 0;
}
