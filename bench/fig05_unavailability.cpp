// Figure 5: server unavailability events over one month.
//
// Paper: planned events dominate (up to ~5% of regional capacity); unplanned
// events idle <0.5% but spike above 3% during a correlated failure; one such
// ~4% MSB-scale event appears in the month. We run the health-event
// generator over a 4-week horizon with one injected correlated failure and
// sample the affected capacity every 60 minutes.

#include "bench/bench_common.h"
#include "src/health/health.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 5: Server unavailability events over one month (% of capacity)",
              "planned dominates (<~5%); unplanned <0.5% baseline with a ~4% correlated spike");

  FleetOptions fleet_options;
  fleet_options.num_datacenters = 3;
  fleet_options.msbs_per_datacenter = 8;  // 24 MSBs -> one MSB ~4.2% of capacity.
  fleet_options.racks_per_msb = 8;
  fleet_options.servers_per_rack = 10;
  fleet_options.seed = 55;
  Fleet fleet = GenerateFleet(fleet_options);
  ResourceBroker broker(&fleet.topology);
  HealthCheckService health(&broker);

  HealthEventGenerator generator(&fleet.topology, HealthRates());
  Rng rng(555);
  health.LoadSchedule(generator.GenerateSchedule(SimTime{0}, Weeks(4), rng));

  // The paper's example correlated failure: one whole MSB in week 3.
  HealthEvent correlated;
  correlated.kind = HealthEventKind::kMsbCorrelatedFailure;
  correlated.start = SimTime{0} + Weeks(2) + Days(3);
  correlated.duration = Hours(10);
  correlated.servers = fleet.topology.ServersInMsb(11);
  health.Inject(correlated);

  const double fleet_size = static_cast<double>(fleet.topology.num_servers());
  double peak_planned = 0, peak_unplanned = 0, peak_total = 0;
  std::printf("%-14s %10s %12s %12s %12s\n", "time", "planned%", "unplanned%", "hw-only%",
              "total%");
  for (int64_t hour = 0; hour < Weeks(4).seconds / 3600; ++hour) {
    SimTime now = SimTime{hour * 3600};
    health.AdvanceTo(now);
    size_t planned = 0, unplanned = 0, hw = 0;
    for (ServerId id = 0; id < broker.num_servers(); ++id) {
      switch (broker.record(id).unavailability) {
        case Unavailability::kPlannedMaintenance:
          ++planned;
          break;
        case Unavailability::kUnplannedHardware:
          ++unplanned;
          ++hw;
          break;
        case Unavailability::kUnplannedSoftware:
          ++unplanned;
          break;
        default:
          break;
      }
    }
    double planned_pct = 100.0 * planned / fleet_size;
    double unplanned_pct = 100.0 * unplanned / fleet_size;
    peak_planned = std::max(peak_planned, planned_pct);
    peak_unplanned = std::max(peak_unplanned, unplanned_pct);
    peak_total = std::max(peak_total, planned_pct + unplanned_pct);
    if (hour % 24 == 12) {  // One line per day at noon.
      std::printf("%-14s %10.2f %12.2f %12.2f %12.2f\n", FormatSimTime(now).c_str(),
                  planned_pct, unplanned_pct, 100.0 * hw / fleet_size,
                  planned_pct + unplanned_pct);
    }
  }
  std::printf("\npeaks over the month: planned=%.2f%% unplanned=%.2f%% combined=%.2f%%\n",
              peak_planned, peak_unplanned, peak_total);
  std::printf("(one MSB of this region is %.2f%% of capacity — the correlated spike)\n",
              100.0 / static_cast<double>(fleet.topology.num_msbs()));
  return 0;
}
