// Ablation: the LP-guided rounding heuristic (src/core/lp_rounding).
//
// The paper's "Initial State" step feeds the solver a warm start, and its
// commercial MIP solver brings its own primal heuristics. This repo's
// from-scratch branch-and-bound relies on a problem-aware LP-rounding
// heuristic instead; this bench shows what it buys: final objective and
// wall time with (a) warm start only + generic fix-and-solve rounding, and
// (b) the LP-guided largest-remainder rounding with greedy repair.

#include <chrono>

#include "bench/bench_common.h"
#include "src/core/initial_assignment.h"
#include "src/core/lp_rounding.h"

using namespace ras;
using namespace ras::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  PrintHeader("Ablation: generic rounding vs LP-guided rounding heuristic",
              "(repro design choice; substitutes for the commercial solver's heuristics)");

  std::printf("%-6s | %14s %9s | %14s %9s | %9s\n", "trial", "generic obj", "time(s)",
              "lp-guided obj", "time(s)", "obj ratio");
  double ratio_sum = 0;
  int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    FleetOptions fleet_options;
    fleet_options.num_datacenters = 2;
    fleet_options.msbs_per_datacenter = 4;
    fleet_options.racks_per_msb = 6;
    fleet_options.servers_per_rack = 8;
    fleet_options.seed = 3000 + static_cast<uint64_t>(trial);
    Fleet fleet = GenerateFleet(fleet_options);
    ResourceBroker broker(&fleet.topology);
    ReservationRegistry registry;
    EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
    Rng rng(30 + static_cast<uint64_t>(trial));
    auto profiles = MakePaperServiceProfiles();
    for (int i = 0; i < 8; ++i) {
      ReservationSpec spec;
      spec.name = "svc-" + std::to_string(i);
      spec.capacity_rru = rng.Uniform(20, 45);
      spec.rru_per_type = BuildRruVector(fleet.catalog, profiles[static_cast<size_t>(i) % 5]);
      (void)*registry.Create(spec);
    }
    // Concentrated pre-bindings make the optimization non-trivial.
    SolveInput probe = SnapshotSolveInput(broker, registry, fleet.catalog);
    for (size_t r = 0; r < probe.reservations.size() && r < 4; ++r) {
      for (ServerId id = static_cast<ServerId>(r * 24); id < (r + 1) * 24; ++id) {
        broker.SetCurrent(id, probe.reservations[r].id);
      }
    }
    SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
    auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
    SolverConfig config;
    BuiltModel built = BuildRasModel(input, classes, config, false);
    auto counts = BuildInitialCounts(input, classes, built);
    auto warm = MakeWarmStart(input, classes, built, counts);

    MipOptions generic = config.phase1_mip;  // No heuristic installed.
    double t0 = Now();
    MipResult without = MipSolver(generic).Solve(built.model, &warm);
    double t_generic = Now() - t0;

    MipOptions guided = config.phase1_mip;
    guided.heuristic = MakeLpRoundingHeuristic(input, classes, built);
    t0 = Now();
    MipResult with = MipSolver(guided).Solve(built.model, &warm);
    double t_guided = Now() - t0;

    double ratio = without.objective / std::max(with.objective, 1e-9);
    ratio_sum += ratio;
    std::printf("%-6d | %14.0f %9.2f | %14.0f %9.2f | %8.2fx\n", trial, without.objective,
                t_generic, with.objective, t_guided, ratio);
  }
  std::printf("\nmean objective ratio (generic / lp-guided): %.2fx — the domain-aware\n"
              "rounding is what lets tiny node budgets reach near-optimal assignments\n"
              "(see bench/fig09_quality_gap).\n",
              ratio_sum / trials);
  return 0;
}
