// Figure 9: phase-1 MIP quality gap under the early timeout.
//
// Paper: phase 1 is interrupted by a timeout before proven optimality; the
// residual gap, measured in units of the model's own costs, is small — 90%
// of solutions are optimal to within 200 server preemptions (gap <= 200 Ms),
// and 99% are optimal "to fix all softened constraints" (every high-priority
// constraint slack is zero), and longer timeouts tighten bounds but rarely
// produce new solutions.
//
// Here: for each of 24 randomized satisfiable workloads we run the phase-1
// MIP twice — with the production-style early budget and with a 12x larger
// reference budget — and report the objective regression of the early stop
// in units of Ms (the in-use move cost, i.e. "preemptions"), plus the
// fraction of early solves whose softened-constraint slacks are all zero.
// (The raw LP bound is not used: without cutting planes it reflects the
// LP-IP gap of the spread terms, not solution quality; see EXPERIMENTS.md.)

#include <algorithm>

#include "bench/bench_common.h"
#include "src/core/initial_assignment.h"
#include "src/core/lp_rounding.h"
#include "src/util/stats.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 9: phase-1 MIP quality gap under early timeout",
              "90% of solves optimal within 200 preemption-costs; 99% fix all softened "
              "constraints");

  SolverConfig config;
  MipOptions early = config.phase1_mip;
  early.max_nodes = 24;  // The aggressive early timeout.
  early.time_limit_seconds = 10;
  MipOptions reference = config.phase1_mip;
  reference.max_nodes = 200;
  reference.time_limit_seconds = 60;

  Rng rng(909);
  std::vector<double> gap_in_preemptions;
  int fixed_all_constraints = 0;
  int trials_done = 0;
  const int kTrials = 24;
  for (int trial = 0; trial < kTrials; ++trial) {
    FleetOptions fleet_options;
    fleet_options.num_datacenters = 2;
    fleet_options.msbs_per_datacenter = 3 + static_cast<int>(rng.UniformInt(0, 1));
    fleet_options.racks_per_msb = 6;
    fleet_options.servers_per_rack = 8;
    fleet_options.seed = 1000 + static_cast<uint64_t>(trial);
    Fleet fleet = GenerateFleet(fleet_options);
    ResourceBroker broker(&fleet.topology);
    ReservationRegistry registry;
    EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);

    // Satisfiable workloads: ~half the region's count-based capacity, split
    // across services; production capacity requests are near-always grantable.
    auto profiles = MakePaperServiceProfiles();
    int num_services = 6 + static_cast<int>(rng.UniformInt(0, 4));
    double budget = static_cast<double>(fleet.topology.num_servers()) * 0.45;
    for (int i = 0; i < num_services; ++i) {
      const ServiceProfile& p = profiles[static_cast<size_t>(rng.UniformInt(0, 4))];
      ReservationSpec spec;
      spec.name = "svc-" + std::to_string(i);
      spec.capacity_rru = rng.Uniform(0.5, 1.0) * budget / num_services;
      spec.rru_per_type = BuildRruVector(fleet.catalog, p);
      (void)*registry.Create(spec);
    }
    // Concentrated pre-existing bindings so stability vs spread is in play.
    SolveInput probe = SnapshotSolveInput(broker, registry, fleet.catalog);
    for (size_t r = 0; r < probe.reservations.size() && r < 3; ++r) {
      for (ServerId id = static_cast<ServerId>(r * 20); id < (r + 1) * 20; ++id) {
        broker.SetCurrent(id, probe.reservations[r].id);
      }
    }

    SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
    auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
    BuiltModel built = BuildRasModel(input, classes, config, false);
    auto counts = BuildInitialCounts(input, classes, built);
    auto warm = MakeWarmStart(input, classes, built, counts);

    MipOptions early_trial = early;
    MipOptions reference_trial = reference;
    early_trial.heuristic = MakeLpRoundingHeuristic(input, classes, built);
    reference_trial.heuristic = early_trial.heuristic;
    MipResult quick = MipSolver(early_trial).Solve(built.model, &warm);
    MipResult ref = MipSolver(reference_trial).Solve(built.model, &warm);
    if (quick.x.empty() || ref.x.empty()) {
      continue;
    }
    ++trials_done;
    double gap = std::max(0.0, quick.objective - ref.objective);
    gap_in_preemptions.push_back(gap / config.move_cost_in_use);

    // "Fixed all softened constraints": capacity/affinity slacks all zero.
    double slack = 0.0;
    for (size_t r = 0; r < input.reservations.size(); ++r) {
      if (built.shortfall_vars[r] != kNoVar) {
        slack += quick.x[built.shortfall_vars[r]];
      }
    }
    for (const auto& term : built.affinity_terms) {
      slack += quick.x[term.lo_slack] + quick.x[term.hi_slack];
    }
    if (slack < 1e-3) {  // Above LP numerical dust.
      ++fixed_all_constraints;
    }
  }

  std::sort(gap_in_preemptions.begin(), gap_in_preemptions.end());
  std::printf("%-12s %28s\n", "percentile", "early-stop regression (Ms)");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 100.0}) {
    std::printf("%-12.0f %28.1f\n", p, Percentile(gap_in_preemptions, p));
  }
  int within_200 = 0;
  for (double g : gap_in_preemptions) {
    within_200 += g <= 200.0;
  }
  std::printf("\nearly solves within 200 preemption-costs of the reference: %.0f%% (paper: 90%%)\n",
              100.0 * within_200 / std::max(1, static_cast<int>(gap_in_preemptions.size())));
  std::printf("early solves that fixed all softened constraints:          %.0f%% (paper: 99%%)\n",
              100.0 * fixed_all_constraints / std::max(1, trials_done));
  return 0;
}
