// Figure 12: correlated-failure buffer reduction as RAS rolls out.
//
// Paper: the region starts on Twine's greedy server assignment, where the
// worst service-MSB concentration forces ~15.1% of machines to be reserved
// against a single-MSB loss. As RAS takes over more reservations it drives
// the metric down to 5.8%, and after additional MSBs are turned up, to 4.2%
// — close to the 4.06% lower bound given the actual hardware imbalance
// (perfectly spread hardware would allow 100/36 = 2.8%).
//
// Here: a 14-MSB region (12 live + 2 dark) runs greedy for two weeks; RAS
// then takes over 4 services per week; the two dark MSBs are turned up in
// week 6. We print the weekly "machines % in max MSB" (capacity-weighted
// worst-MSB share) against the same two lower bounds, computed for this
// region: the waterfill bound over actual hardware placement, and
// 100 / #MSBs for perfectly-spread hardware.

#include "bench/bench_common.h"
#include "src/sim/scenario.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 12: machines % in max MSB as RAS rolls out",
              "greedy 15.1% -> RAS 5.8% -> +new MSBs 4.2%; bounds 4.06% / 2.8%");

  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 7;  // 14 MSBs; 2 start dark.
  options.fleet.racks_per_msb = 8;
  options.fleet.servers_per_rack = 8;
  options.fleet.seed = 1212;
  RegionScenario sim(options);
  const RegionTopology& topo = sim.fleet.topology;

  // The two newest MSBs are not yet turned up: mark every server failed so
  // neither greedy nor the solver can touch them.
  std::vector<MsbId> dark = {static_cast<MsbId>(topo.num_msbs() - 1),
                             static_cast<MsbId>(topo.num_msbs() - 2)};
  for (MsbId m : dark) {
    for (ServerId id : topo.ServersInMsb(m)) {
      sim.broker->SetUnavailability(id, Unavailability::kUnplannedHardware);
    }
  }

  // 12 services, all legacy-managed at first, grown greedily (deployment
  // order => concentrated in the oldest MSBs).
  Rng rng(121212);
  std::vector<ReservationId> services;
  for (int i = 0; i < 12; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = rng.Uniform(30, 60);
    spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
    spec.externally_managed = true;
    ReservationId id = *sim.registry.Create(spec);
    services.push_back(id);
    std::vector<HardwareTypeId> any;
    for (size_t t = 0; t < sim.fleet.catalog.size(); ++t) {
      any.push_back(static_cast<HardwareTypeId>(t));
    }
    // Greedy grows capacity + its own ad-hoc buffer (the pre-RAS world made
    // each owner provision for failures individually).
    sim.greedy->Grow(id, any, static_cast<size_t>(spec.capacity_rru * 1.15));
  }

  std::printf("%-6s %8s %14s %12s\n", "week", "ras-svcs", "max-MSB share%", "live MSBs");
  size_t migrated = 0;
  for (int week = 1; week <= 8; ++week) {
    if (week >= 3 && migrated < services.size()) {
      // Migrate four services per week to RAS.
      for (int k = 0; k < 4 && migrated < services.size(); ++k, ++migrated) {
        ReservationSpec spec = *sim.registry.Find(services[migrated]);
        spec.externally_managed = false;
        (void)sim.registry.Update(spec);
      }
    }
    if (week == 6) {
      // Turn up the dark MSBs: their hardware becomes available.
      for (MsbId m : dark) {
        for (ServerId id : topo.ServersInMsb(m)) {
          sim.broker->SetUnavailability(id, Unavailability::kNone);
        }
      }
    }
    if (migrated > 0) {
      auto stats = sim.SolveRound();
      if (!stats.ok()) {
        std::fprintf(stderr, "solve failed in week %d\n", week);
        return 1;
      }
    }
    size_t live = topo.num_msbs() - (week < 6 ? dark.size() : 0);
    std::printf("%-6d %8zu %14.2f %12zu\n", week, migrated,
                100.0 * RegionEmbeddedBufferFraction(*sim.broker, sim.registry), live);
  }

  // Lower bounds for this region, after turn-up (capacity-weighted).
  double weighted_bound = 0.0, total_capacity = 0.0;
  for (ReservationId id : services) {
    const ReservationSpec* spec = sim.registry.Find(id);
    weighted_bound += MinPossibleMaxMsbShare(*spec, topo) * spec->capacity_rru;
    total_capacity += spec->capacity_rru;
  }
  std::printf("\nlower bounds for this region: hardware-imbalance (waterfill) %.2f%%, "
              "perfect spread %.2f%%\n",
              100.0 * weighted_bound / total_capacity, 100.0 * PerfectSpreadBound(topo));
  std::printf("(paper: 15.1%% -> 5.8%% -> 4.2%% against 4.06%% / 2.8%% with 36 MSBs; this\n"
              " region has %zu MSBs so the absolute levels differ, the shape is the claim)\n",
              topo.num_msbs());
  return 0;
}
