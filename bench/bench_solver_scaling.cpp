// Solver-kernel scaling bench: the perf-regression anchor for the Async
// Solver's MIP engine (the machinery behind Figures 7 and 10).
//
// Runs the phase-1 RAS MIP over a set of synthetic regions under four solver
// configurations:
//
//   seed-dense  : the original serial dense simplex (full Dantzig pricing,
//                 fixed refactor cadence) — the reference the repo grew from.
//   sparse      : CSC kernels + partial pricing + adaptive refactorization,
//                 serial branch-and-bound.
//   sparse-t2/4 : sparse kernels with 2 / 4 branch-and-bound workers.
//
// Prints a comparison table and writes BENCH_solver.json (via the common
// bench_json emitter) with wall time, simplex iterations, nodes, gap, and
// threads per configuration, so successive runs can be diffed mechanically.
// Also verifies that threads=1 is run-to-run deterministic (bitwise-identical
// solution vectors).
//
// Usage: bench_solver_scaling [small] [output.json]

#include <chrono>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/core/initial_assignment.h"
#include "src/core/lp_rounding.h"

using namespace ras;
using namespace ras::bench;

namespace {

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Workload {
  SolveInput input;
  std::vector<EquivalenceClass> classes;
  BuiltModel built;
  std::vector<double> warm;
};

struct ConfigResult {
  double wall_s = 0.0;
  int64_t lp_iterations = 0;
  int64_t nodes = 0;
  double objective = 0.0;
  double gap = 0.0;
  MipStatus status = MipStatus::kError;
  std::vector<double> first_x;  // Solution of the first workload (determinism probe).
};

ConfigResult RunConfig(const std::vector<Workload*>& workloads, const SolverConfig& config,
                       bool use_sparse, int threads) {
  ConfigResult out;
  for (size_t w = 0; w < workloads.size(); ++w) {
    Workload& wl = *workloads[w];
    MipOptions options = config.phase1_mip;
    options.lp = LpOptions();
    options.lp.use_sparse_kernels = use_sparse;
    options.threads = threads;
    options.heuristic = MakeLpRoundingHeuristic(wl.input, wl.classes, wl.built);
    MipSolver solver(options);
    double t0 = WallNow();
    MipResult mip = solver.Solve(wl.built.model, &wl.warm);
    out.wall_s += WallNow() - t0;
    out.lp_iterations += mip.lp_iterations;
    out.nodes += mip.nodes;
    out.objective += mip.objective;
    out.gap += mip.gap();
    out.status = mip.status;
    if (w == 0) {
      out.first_x = mip.x;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  std::string out_path = DefaultOutputPath("BENCH_solver.json");
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "small") == 0) {
      small = true;
    } else {
      out_path = argv[a];
    }
  }

  PrintHeader("Solver scaling: sparse simplex kernels + parallel branch-and-bound",
              "continuous region-wide re-optimization must be as fast as the hardware "
              "allows (Figs. 7/10 measure allocation time and setup scaling)");

  // Fig. 9-style satisfiable workloads, the shape the Async Solver's phase 1
  // actually sees: a few nonzeros per assignment row, soft capacity rows.
  SolverConfig config;
  const int kWorkloads = small ? 1 : 3;
  Rng rng(909);
  std::vector<Workload> workloads(static_cast<size_t>(kWorkloads));
  // SolveInput keeps raw pointers into the fleet topology/catalog, so the
  // fleets must outlive the workloads at stable addresses (deque, not vector).
  std::deque<Fleet> fleets;
  for (int t = 0; t < kWorkloads; ++t) {
    FleetOptions fleet_options;
    fleet_options.num_datacenters = 2;
    fleet_options.msbs_per_datacenter = small ? 3 : 4;
    fleet_options.racks_per_msb = small ? 4 : 10;
    fleet_options.servers_per_rack = small ? 6 : 12;
    fleet_options.seed = 1000 + static_cast<uint64_t>(t);
    fleets.push_back(GenerateFleet(fleet_options));
    Fleet& fleet = fleets.back();
    ResourceBroker broker(&fleet.topology);
    ReservationRegistry registry;
    EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
    auto profiles = MakePaperServiceProfiles();
    int num_services = small ? 5 : 12;
    double budget = static_cast<double>(fleet.topology.num_servers()) * 0.45;
    for (int i = 0; i < num_services; ++i) {
      const ServiceProfile& p = profiles[static_cast<size_t>(rng.UniformInt(0, 4))];
      ReservationSpec spec;
      spec.name = "svc-" + std::to_string(i);
      spec.capacity_rru = rng.Uniform(0.5, 1.0) * budget / num_services;
      spec.rru_per_type = BuildRruVector(fleet.catalog, p);
      (void)*registry.Create(spec);
    }
    Workload& wl = workloads[static_cast<size_t>(t)];
    wl.input = SnapshotSolveInput(broker, registry, fleet.catalog);
    wl.classes = BuildEquivalenceClasses(wl.input, Scope::kMsb);
    wl.built = BuildRasModel(wl.input, wl.classes, config, /*include_rack_spread=*/false);
    auto counts = BuildInitialCounts(wl.input, wl.classes, wl.built);
    wl.warm = MakeWarmStart(wl.input, wl.classes, wl.built, counts);
    std::printf("workload %d: %zu rows, %zu vars, %zu nonzeros\n", t,
                wl.built.model.num_rows(), wl.built.model.num_variables(),
                wl.built.model.num_nonzeros());
  }
  std::vector<Workload*> ptrs;
  for (Workload& w : workloads) {
    ptrs.push_back(&w);
  }

  struct Config {
    const char* name;
    bool sparse;
    int threads;
  };
  const Config kConfigs[] = {
      {"seed-dense", false, 1},
      {"sparse", true, 1},
      {"sparse-t2", true, 2},
      {"sparse-t4", true, 4},
  };

  BenchJsonWriter json("solver_scaling");
  AddStandardMeta(json);
  std::printf("\n%-12s %10s %12s %8s %12s %10s %9s\n", "config", "wall_s", "lp_iters",
              "nodes", "objective", "gap", "speedup");
  double dense_wall = 0.0;
  double t4_speedup = 0.0;
  for (const Config& c : kConfigs) {
    ConfigResult r = RunConfig(ptrs, config, c.sparse, c.threads);
    if (c.threads == 1 && !c.sparse) {
      dense_wall = r.wall_s;
    }
    double speedup = dense_wall > 0 ? dense_wall / r.wall_s : 1.0;
    if (c.threads == 4) {
      t4_speedup = speedup;
    }
    std::printf("%-12s %10.3f %12lld %8lld %12.1f %10.1f %8.2fx\n", c.name, r.wall_s,
                static_cast<long long>(r.lp_iterations), static_cast<long long>(r.nodes),
                r.objective, r.gap, speedup);
    json.AddRecord()
        .Set("config", c.name)
        .Set("sparse_kernels", c.sparse)
        .Set("threads", c.threads)
        .Set("wall_s", r.wall_s)
        .Set("iterations", r.lp_iterations)
        .Set("nodes", r.nodes)
        .Set("objective", r.objective)
        .Set("gap", r.gap)
        .Set("status", MipStatusName(r.status))
        .Set("speedup_vs_dense", speedup)
        .Set("workloads", static_cast<int64_t>(kWorkloads));
  }

  // threads=1 determinism: two runs of the sparse serial config must produce
  // bitwise-identical solution vectors.
  ConfigResult d1 = RunConfig(ptrs, config, /*use_sparse=*/true, /*threads=*/1);
  ConfigResult d2 = RunConfig(ptrs, config, /*use_sparse=*/true, /*threads=*/1);
  bool deterministic = d1.first_x == d2.first_x;
  std::printf("\nthreads=1 determinism (bitwise, repeated run): %s\n",
              deterministic ? "OK" : "MISMATCH");
  AddDeterminismRecord(json, "sparse-serial", deterministic);

  if (!json.WriteFile(out_path)) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("sparse-t4 speedup vs seed-dense: %.2fx (target >= 2x on the default region)\n",
              t4_speedup);
  return deterministic ? 0 : 1;
}
