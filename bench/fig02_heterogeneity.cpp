// Figure 2: hardware mixture across MSBs.
//
// Paper: 14 representative MSBs show vastly different SKU mixtures (9
// categories, 12 subtypes); the final column is the region average. Old MSBs
// carry old generations and discontinued SKUs; the newest carry gen-3 and
// GPU SKUs. We print the same table from the synthetic fleet generator.

#include "bench/bench_common.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 2: Hardware heterogeneity across MSBs (capacity % per SKU)",
              "9 hardware categories / 12 subtypes; large mixture variation across MSBs");

  FleetOptions options;
  options.num_datacenters = 2;
  options.msbs_per_datacenter = 7;  // 14 MSBs, as in the figure.
  options.racks_per_msb = 24;
  options.servers_per_rack = 10;
  options.seed = 20260705;
  Fleet fleet = GenerateFleet(options);

  std::printf("%-8s", "SKU");
  for (MsbId m = 0; m < fleet.topology.num_msbs(); ++m) {
    std::printf("%6c", static_cast<char>('A' + m));
  }
  std::printf("%7s\n", "Avg");

  std::vector<double> region_mix = fleet.TypeMix();
  size_t skus_present = 0;
  for (size_t t = 0; t < fleet.catalog.size(); ++t) {
    std::printf("%-8s", fleet.catalog.type(static_cast<HardwareTypeId>(t)).name.c_str());
    for (MsbId m = 0; m < fleet.topology.num_msbs(); ++m) {
      double pct = 100.0 * fleet.TypeMixInMsb(m)[t];
      if (pct == 0.0) {
        std::printf("%6s", ".");
      } else {
        std::printf("%6.1f", pct);
      }
    }
    std::printf("%7.1f\n", 100.0 * region_mix[t]);
    skus_present += region_mix[t] > 0 ? 1 : 0;
  }

  // Mixture-variation summary: SKUs stocked per MSB.
  std::printf("\nSKUs stocked per MSB: ");
  for (MsbId m = 0; m < fleet.topology.num_msbs(); ++m) {
    size_t present = 0;
    for (double v : fleet.TypeMixInMsb(m)) {
      present += v > 0 ? 1 : 0;
    }
    std::printf("%zu ", present);
  }
  std::printf("\nregion: %zu SKUs total; no MSB stocks all of them — the\n"
              "heterogeneity the solver must abstract away via RRUs.\n",
              skus_present);
  return 0;
}
