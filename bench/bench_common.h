// Shared helpers for the figure-reproduction benches.

#ifndef RAS_BENCH_BENCH_COMMON_H_
#define RAS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/ras.h"
#include "src/fleet/fleet_gen.h"

namespace ras {
namespace bench {

// A count-based reservation accepting every hardware type.
inline ReservationSpec CountReservation(const HardwareCatalog& catalog, const std::string& name,
                                        double capacity) {
  ReservationSpec spec;
  spec.name = name;
  spec.capacity_rru = capacity;
  spec.rru_per_type.assign(catalog.size(), 1.0);
  return spec;
}

inline void PrintHeader(const char* figure, const char* claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================================\n");
}

// Simple fixed-width series printer: "label  v1 v2 v3 ...".
inline void PrintSeries(const char* label, const std::vector<double>& values,
                        const char* fmt = "%8.2f") {
  std::printf("%-28s", label);
  for (double v : values) {
    std::printf(fmt, v);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace ras

#endif  // RAS_BENCH_BENCH_COMMON_H_
