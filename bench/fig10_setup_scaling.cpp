// Figure 10: setup time (RAS build + solver build + initial state) vs the
// number of assignment variables, for both phases.
//
// Paper: across Facebook's production regions, setup time grows linearly
// with assignment variables (up to ~6M vars / ~600s); this lower-bounds the
// allocation time even with MIP early-timeout, which is what motivates
// two-phase solving (a single-phase problem would be 10x larger).
//
// Uses google-benchmark: one benchmark per region scale; the per-iteration
// time is the full setup pipeline (snapshot, symmetry reduction, model
// build, greedy initial state) for both phases; assignment-variable counts
// are exported as counters. Linearity shows as time/vars staying flat.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/sweep_common.h"

using namespace ras;
using namespace ras::bench;

namespace {

// Regions are expensive to generate; cache one per scale across iterations.
SweepRegion& CachedRegion(int scale) {
  static std::map<int, std::unique_ptr<SweepRegion>> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    it = cache.emplace(scale, std::make_unique<SweepRegion>(scale)).first;
  }
  return *it->second;
}

void BM_SetupPipeline(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  SweepRegion& region = CachedRegion(scale);
  SetupMeasurement last;
  for (auto _ : state) {
    last = MeasureSetup(region);
    benchmark::DoNotOptimize(last.phase1_vars);
  }
  state.counters["servers"] = static_cast<double>(last.servers);
  state.counters["p1_vars"] = static_cast<double>(last.phase1_vars);
  state.counters["p2_vars"] = static_cast<double>(last.phase2_vars);
  state.counters["p1_setup_ms"] = last.phase1_setup_s * 1e3;
  state.counters["p2_setup_ms"] = last.phase2_setup_s * 1e3;
  // The paper's linearity check: microseconds of setup per assignment var.
  state.counters["p1_us_per_var"] = last.phase1_setup_s * 1e6 /
                                    std::max<double>(1.0, static_cast<double>(last.phase1_vars));
}

}  // namespace

BENCHMARK(BM_SetupPipeline)->DenseRange(0, 5)->Unit(benchmark::kMillisecond)->Iterations(3);

BENCHMARK_MAIN();
