// Figure 16: weekly in-use vs unused server-move churn.
//
// Paper: continuous re-optimization moves servers between reservations, but
// Expression (1)'s 10x cheaper penalty for container-free servers makes the
// solver draw moves from the idle ~20% of the fleet: the hourly rate of
// unused moves is 10.6x the in-use rate, with spikes during working hours
// (engineer-driven capacity requests) and a failure-driven trickle off-hours.
//
// Here: one simulated week with a diurnal capacity-request pattern, health
// events, 4-hourly solves, and hourly reconciliation; we print the hourly
// move percentages by tier and the overall unused/in-use ratio.

#include "bench/bench_common.h"
#include "src/sim/scenario.h"
#include "src/util/stats.h"

using namespace ras;
using namespace ras::bench;

int main() {
  PrintHeader("Figure 16: hourly server moves, in-use vs unused, over one week",
              "unused-move rate ~10.6x the in-use rate; spikes during working hours");

  ScenarioOptions options;
  options.fleet.num_datacenters = 2;
  options.fleet.msbs_per_datacenter = 4;
  options.fleet.racks_per_msb = 5;
  options.fleet.servers_per_rack = 10;
  options.fleet.seed = 1616;
  RegionScenario sim(options);
  const double fleet_size = static_cast<double>(sim.broker->num_servers());

  // Eight services; each runs containers on ~75% of its servers, matching
  // the paper's "~80% of servers run containers... RAS is able to meet most
  // placement objectives by selecting moves from the remaining 20%".
  std::vector<ReservationId> services;
  std::vector<double> base_capacity;
  for (int i = 0; i < 8; ++i) {
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = 28 + 4 * i;
    spec.rru_per_type.assign(sim.fleet.catalog.size(), 1.0);
    services.push_back(*sim.registry.Create(spec));
    base_capacity.push_back(spec.capacity_rru);
  }
  if (!sim.SolveRound().ok()) {
    std::fprintf(stderr, "initial solve failed\n");
    return 1;
  }
  for (size_t i = 0; i < services.size(); ++i) {
    JobSpec job;
    job.name = "job-" + std::to_string(i);
    job.reservation = services[i];
    job.container = ContainerSpec{24.0, 48.0};
    job.replicas = static_cast<int>(base_capacity[i] * 0.75);
    (void)*sim.twine->SubmitJob(job);
  }
  // Settle: a few solve rounds absorb the initial placement transient so the
  // measured week reflects steady-state churn, then reset the counters.
  for (int round = 0; round < 3; ++round) {
    (void)sim.SolveRound();
  }
  sim.mover->ResetStats();
  sim.ArmHealth(Weeks(1));

  // Hourly loop with 4-hourly solves; capacity churn only in working hours.
  struct HourSample {
    double in_use_pct;
    double unused_pct;
  };
  std::vector<HourSample> samples;
  size_t prev_in_use = 0, prev_idle = 0;
  const char* days[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  for (int hour = 0; hour < 7 * 24; ++hour) {
    SimTime now = SimTime{static_cast<int64_t>(hour) * 3600};
    sim.health->AdvanceTo(now);
    int hour_of_day = hour % 24;
    int day = hour / 24;
    bool working_hours = day < 5 && hour_of_day >= 9 && hour_of_day < 18;
    if (working_hours && sim.rng.Bernoulli(0.6)) {
      // An engineer resizes a capacity request.
      size_t which = static_cast<size_t>(sim.rng.UniformInt(0, 7));
      ReservationSpec spec = *sim.registry.Find(services[which]);
      spec.capacity_rru =
          std::max(15.0, base_capacity[which] * sim.rng.Uniform(0.9, 1.25));
      (void)sim.registry.Update(spec);
    }
    if (hour % 4 == 0) {
      (void)sim.SolveRound();
    } else {
      sim.mover->ReconcileAll();
      sim.twine->RetryPending();
    }
    const MoverStats& stats = sim.mover->stats();
    samples.push_back(HourSample{
        100.0 * static_cast<double>(stats.in_use_moves - prev_in_use) / fleet_size,
        100.0 * static_cast<double>(stats.idle_moves - prev_idle) / fleet_size});
    prev_in_use = stats.in_use_moves;
    prev_idle = stats.idle_moves;
  }

  // Daily aggregates (hourly print would be 168 lines).
  std::printf("%-6s %16s %16s\n", "day", "in-use moves/h%", "unused moves/h%");
  for (int day = 0; day < 7; ++day) {
    double in_use = 0, unused = 0;
    for (int h = 0; h < 24; ++h) {
      in_use += samples[static_cast<size_t>(day * 24 + h)].in_use_pct;
      unused += samples[static_cast<size_t>(day * 24 + h)].unused_pct;
    }
    std::printf("%-6s %16.3f %16.3f\n", days[day], in_use / 24, unused / 24);
  }

  double total_in_use = 0, total_unused = 0, work_unused = 0, off_unused = 0;
  for (size_t h = 0; h < samples.size(); ++h) {
    total_in_use += samples[h].in_use_pct;
    total_unused += samples[h].unused_pct;
    int day = static_cast<int>(h) / 24;
    int hod = static_cast<int>(h) % 24;
    if (day < 5 && hod >= 9 && hod < 18) {
      work_unused += samples[h].unused_pct;
    } else {
      off_unused += samples[h].unused_pct;
    }
  }
  double work_hours = 5 * 9, off_hours = 168 - work_hours;
  std::printf("\nweekly: unused/in-use move ratio = %.1fx (paper: 10.6x)\n",
              total_unused / std::max(total_in_use, 1e-9));
  std::printf("working-hours unused rate %.3f%%/h vs off-hours %.3f%%/h "
              "(diurnal spike, paper's shape)\n",
              work_unused / work_hours, off_unused / off_hours);
  return 0;
}
