// Shard scaling bench: the trajectory anchor for src/shard (§3.5.2's
// "smaller scopes solve faster" observation, POP-style random partitioning).
//
// Sweeps the shard count K over {1, 2, 4, 8} on one large synthetic region
// and, for each K, runs the full two-phase Async Solver solve with the
// region decomposed into K rack-complete shards. K=1 is the monolithic
// reference. Every K's merged targets are re-scored on a single monolithic
// reference model (counts -> warm start -> Objective), so the objective
// ratios compare like with like regardless of how the solve was decomposed.
//
// Writes BENCH_shard.json (via the common bench_json emitter) with wall
// time, region objective and ratio vs monolithic, stitch-repair moves, and
// the uniform determinism record (K=4 twice, targets compared bitwise).
//
// Usage: bench_shard_scaling [small] [output.json]

#include <chrono>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "src/core/async_solver.h"
#include "src/core/model_builder.h"

using namespace ras;
using namespace ras::bench;

namespace {

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Re-scores a decoded assignment on the monolithic reference model: targets
// become per-(class, reservation) counts, MakeWarmStart fills in the
// auxiliary variables (moves, spread overflows, buffers, slacks), and the
// model prices the result. This is the region-wide objective the paper's
// quality comparisons use — identical machinery for every K.
struct ReferenceModel {
  std::vector<EquivalenceClass> classes;
  BuiltModel built;
  std::vector<int> class_of_server;           // ServerId -> class index.
  std::unordered_map<ReservationId, int> res_index;
  std::vector<std::unordered_map<int, size_t>> var_of;  // class -> res -> var.

  ReferenceModel(const SolveInput& input, const SolverConfig& config) {
    classes = BuildEquivalenceClasses(input, Scope::kMsb);
    built = BuildRasModel(input, classes, config, /*include_rack_spread=*/false);
    class_of_server.assign(input.servers.size(), -1);
    for (size_t c = 0; c < classes.size(); ++c) {
      for (ServerId s : classes[c].servers) {
        class_of_server[s] = static_cast<int>(c);
      }
    }
    for (size_t r = 0; r < input.reservations.size(); ++r) {
      res_index[input.reservations[r].id] = static_cast<int>(r);
    }
    var_of.resize(classes.size());
    for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
      const auto& av = built.assignment_vars[k];
      var_of[static_cast<size_t>(av.class_index)][av.reservation_index] = k;
    }
  }

  double Score(const SolveInput& input, const DecodedAssignment& decoded) const {
    std::vector<double> counts(built.assignment_vars.size(), 0.0);
    for (const auto& [server, res] : decoded.targets) {
      if (res == kUnassigned) {
        continue;
      }
      int c = class_of_server[server];
      auto r = res_index.find(res);
      if (c < 0 || r == res_index.end()) {
        continue;
      }
      auto var = var_of[static_cast<size_t>(c)].find(r->second);
      if (var != var_of[static_cast<size_t>(c)].end()) {
        counts[var->second] += 1.0;
      }
    }
    std::vector<double> x = MakeWarmStart(input, classes, built, counts);
    if (std::getenv("RAS_SHARD_BENCH_DEBUG") != nullptr) {
      auto cost_of = [&](VarId v) {
        return v >= 0 ? built.model.variable(v).cost *
                            x[static_cast<size_t>(v)]
                      : 0.0;
      };
      double acq = 0, mv = 0, shortf = 0, buf = 0, hoard = 0, spread = 0, aff = 0, quo = 0;
      for (size_t k = 0; k < built.assignment_vars.size(); ++k) {
        acq += cost_of(built.assignment_vars[k].var);
      }
      for (VarId v : built.move_vars) mv += cost_of(v);
      for (VarId v : built.shortfall_vars) shortf += cost_of(v);
      for (VarId v : built.buffer_vars) buf += cost_of(v);
      for (VarId v : built.hoard_vars) hoard += cost_of(v);
      for (const auto& t : built.msb_spread_terms) spread += cost_of(t.var);
      for (const auto& t : built.rack_spread_terms) spread += cost_of(t.var);
      for (const auto& t : built.affinity_terms) {
        aff += cost_of(t.lo_slack) + cost_of(t.hi_slack);
      }
      for (const auto& t : built.quorum_terms) quo += cost_of(t.slack);
      std::printf("  [debug] acquire=%.0f move=%.0f shortfall=%.0f buffer=%.0f hoard=%.0f "
                  "spread=%.0f affinity=%.0f quorum=%.0f\n",
                  acq, mv, shortf, buf, hoard, spread, aff, quo);
    }
    return built.model.Objective(x);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  std::string out_path = DefaultOutputPath("BENCH_shard.json");
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "small") == 0) {
      small = true;
    } else {
      out_path = argv[a];
    }
  }

  PrintHeader("Shard scaling: rack-complete region decomposition (K shards)",
              "§3.5.2 solves shards of the region independently; smaller MIPs are "
              "superlinearly cheaper, so K>1 must beat the monolithic wall time "
              "with the objective within a few percent after stitch repair");

  FleetOptions fleet_options;
  fleet_options.num_datacenters = 2;
  fleet_options.msbs_per_datacenter = small ? 3 : 4;
  fleet_options.racks_per_msb = small ? 6 : 18;
  fleet_options.servers_per_rack = small ? 8 : 36;
  fleet_options.seed = 4242;
  Fleet fleet = GenerateFleet(fleet_options);
  std::printf("region: %zu servers, %zu racks, %u MSBs\n", fleet.topology.num_servers(),
              fleet.topology.num_racks(), fleet.topology.num_msbs());

  ResourceBroker broker(&fleet.topology);
  ReservationRegistry registry;
  EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
  auto profiles = MakePaperServiceProfiles();
  Rng rng(909);
  const int num_services = small ? 8 : 36;
  const double budget = static_cast<double>(fleet.topology.num_servers()) * 0.45;
  for (int i = 0; i < num_services; ++i) {
    const ServiceProfile& p = profiles[static_cast<size_t>(rng.UniformInt(0, 4))];
    ReservationSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.capacity_rru = rng.Uniform(0.5, 1.0) * budget / num_services;
    spec.rru_per_type = BuildRruVector(fleet.catalog, p);
    (void)*registry.Create(spec);
  }
  SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);

  SolverConfig base_config;
  ReferenceModel reference(input, base_config);
  std::printf("reference model: %zu rows, %zu vars, %zu nonzeros\n\n",
              reference.built.model.num_rows(), reference.built.model.num_variables(),
              reference.built.model.num_nonzeros());

  BenchJsonWriter json("shard_scaling");
  AddStandardMeta(json);
  json.Meta()
      .Set("servers", static_cast<int64_t>(fleet.topology.num_servers()))
      .Set("racks", static_cast<int64_t>(fleet.topology.num_racks()))
      .Set("services", static_cast<int64_t>(num_services));

  std::printf("%-8s %10s %12s %10s %8s %8s %10s %9s\n", "config", "wall_s", "objective",
              "obj_ratio", "repairs", "failed", "short_rru", "speedup");
  const int kShardCounts[] = {1, 2, 4, 8};
  double mono_wall = 0.0;
  double mono_objective = 0.0;
  std::vector<std::pair<ServerId, ReservationId>> k4_targets;
  bool all_ok = true;
  for (int k : kShardCounts) {
    SolverConfig config = base_config;
    config.shard_count = k;
    AsyncSolver solver(config);
    DecodedAssignment decoded;
    double t0 = WallNow();
    auto stats = solver.SolveSnapshot(input, &decoded);
    double wall = WallNow() - t0;
    if (!stats.ok()) {
      std::printf("K=%d FAILED: %s\n", k, stats.status().message().c_str());
      all_ok = false;
      continue;
    }
    double objective = reference.Score(input, decoded);
    if (std::getenv("RAS_SHARD_BENCH_DEBUG") != nullptr) {
      std::printf("  [debug] p1: rows=%zu vars=%zu mip=%.3fs setup=%.3fs | p2: rows=%zu "
                  "vars=%zu mip=%.3fs setup=%.3fs\n",
                  stats->phase1.model_rows, stats->phase1.model_variables,
                  stats->phase1.timings.mip_s, stats->phase1.timings.setup(),
                  stats->phase2.model_rows, stats->phase2.model_variables,
                  stats->phase2.timings.mip_s, stats->phase2.timings.setup());
    }
    if (k == 1) {
      mono_wall = wall;
      mono_objective = objective;
    }
    if (k == 4) {
      k4_targets = decoded.targets;
    }
    double ratio = mono_objective != 0.0 ? objective / mono_objective : 1.0;
    double speedup = wall > 0.0 ? mono_wall / wall : 1.0;
    std::printf("K=%-6d %10.3f %12.1f %10.4f %8zu %8zu %10.2f %8.2fx\n", k, wall, objective,
                ratio, stats->repair_moves, stats->failed_shards, stats->total_shortfall_rru,
                speedup);
    json.AddRecord()
        .Set("config", "K=" + std::to_string(k))
        .Set("shard_count", k)
        .Set("wall_s", wall)
        .Set("objective", objective)
        .Set("objective_ratio_vs_monolithic", ratio)
        .Set("repair_moves", static_cast<int64_t>(stats->repair_moves))
        .Set("failed_shards", static_cast<int64_t>(stats->failed_shards))
        .Set("shortfall_rru", stats->total_shortfall_rru)
        .Set("moves_total", static_cast<int64_t>(stats->moves_total))
        .Set("speedup_vs_monolithic", speedup);
  }

  // Determinism: the sharded path (plan -> split -> per-shard solves -> merge
  // -> repair) must be run-to-run reproducible. Re-run K=4 and compare the
  // merged target vector bitwise.
  bool deterministic = true;
  {
    SolverConfig config = base_config;
    config.shard_count = 4;
    AsyncSolver solver(config);
    DecodedAssignment decoded;
    auto stats = solver.SolveSnapshot(input, &decoded);
    deterministic = stats.ok() && decoded.targets == k4_targets;
  }
  std::printf("\nK=4 determinism (bitwise, repeated run): %s\n",
              deterministic ? "OK" : "MISMATCH");
  AddDeterminismRecord(json, "K4", deterministic);

  if (!json.WriteFile(out_path)) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return (deterministic && all_ok) ? 0 : 1;
}
