// Ablation: MIP backend vs local-search backend (the paper's ReBalancer
// choice, Section 6: "ReBalancer uses a MIP solver for RAS, but a
// local-search-based solver for Shard Manager because Shard Manager needs to
// perform near-realtime shard-to-container allocation in seconds").
//
// Same phase-1 problems solved by both backends: final objective and wall
// time. The MIP should win on quality; local search should be competitive
// and strictly time-bounded — the trade-off that made Facebook keep both.

#include <chrono>

#include "bench/bench_common.h"
#include "src/core/initial_assignment.h"
#include "src/core/local_search.h"
#include "src/core/lp_rounding.h"

using namespace ras;
using namespace ras::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  PrintHeader("Ablation: MIP vs local-search backend (ReBalancer's two solvers)",
              "MIP for quality (RAS), local search for bounded latency (Shard Manager)");

  std::printf("%-6s | %12s | %12s %8s | %12s %8s | %7s\n", "trial", "greedy obj", "mip obj",
              "time(s)", "search obj", "time(s)", "mip adv");
  double adv_sum = 0;
  const int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    FleetOptions fleet_options;
    fleet_options.num_datacenters = 2;
    fleet_options.msbs_per_datacenter = 4;
    fleet_options.racks_per_msb = 6;
    fleet_options.servers_per_rack = 8;
    fleet_options.seed = 9000 + static_cast<uint64_t>(trial);
    Fleet fleet = GenerateFleet(fleet_options);
    ResourceBroker broker(&fleet.topology);
    ReservationRegistry registry;
    EnsureSharedBuffers(registry, fleet.topology, fleet.catalog, 0.02);
    Rng rng(90 + static_cast<uint64_t>(trial));
    auto profiles = MakePaperServiceProfiles();
    for (int i = 0; i < 8; ++i) {
      ReservationSpec spec;
      spec.name = "svc-" + std::to_string(i);
      spec.capacity_rru = rng.Uniform(20, 45);
      spec.rru_per_type = BuildRruVector(fleet.catalog, profiles[static_cast<size_t>(i) % 5]);
      (void)*registry.Create(spec);
    }
    SolveInput probe = SnapshotSolveInput(broker, registry, fleet.catalog);
    for (size_t r = 0; r < probe.reservations.size() && r < 4; ++r) {
      for (ServerId id = static_cast<ServerId>(r * 24); id < (r + 1) * 24; ++id) {
        broker.SetCurrent(id, probe.reservations[r].id);
      }
    }
    SolveInput input = SnapshotSolveInput(broker, registry, fleet.catalog);
    auto classes = BuildEquivalenceClasses(input, Scope::kMsb);
    SolverConfig config;
    BuiltModel built = BuildRasModel(input, classes, config, false);
    auto counts = BuildInitialCounts(input, classes, built);
    auto warm = MakeWarmStart(input, classes, built, counts);
    double greedy_obj = built.model.Objective(warm);

    MipOptions mip_options = config.phase1_mip;
    mip_options.heuristic = MakeLpRoundingHeuristic(input, classes, built);
    double t0 = Now();
    MipResult mip = MipSolver(mip_options).Solve(built.model, &warm);
    double mip_time = Now() - t0;

    LocalSearchOptions search_options;
    search_options.time_limit_seconds = 2.0;
    LocalSearchResult search =
        LocalSearchOptimize(input, classes, built, counts, search_options);

    double advantage = search.final_objective / std::max(mip.objective, 1e-9);
    adv_sum += advantage;
    std::printf("%-6d | %12.0f | %12.0f %8.2f | %12.0f %8.2f | %6.2fx\n", trial, greedy_obj,
                mip.objective, mip_time, search.final_objective, search.seconds, advantage);
  }
  std::printf("\nmean local-search/MIP objective ratio: %.2fx (raw backends, same greedy\n"
              "start). In production-shaped AsyncSolver runs the two compose: a short\n"
              "local-search polish feeds the MIP its incumbent, so the shipped answer is\n"
              "min(both) — the one-interface-many-backends design the paper credits to\n"
              "ReBalancer.\n",
              adv_sum / kTrials);
  return 0;
}
