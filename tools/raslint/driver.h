// raslint driver: walks the tree, pairs .cc files with their same-stem
// headers, runs the rules, and aggregates a RunSummary. Shared between the
// CLI (raslint_main.cc) and the test suite's full-repo meta-scan.

#ifndef RAS_TOOLS_RASLINT_DRIVER_H_
#define RAS_TOOLS_RASLINT_DRIVER_H_

#include <string>
#include <vector>

#include "tools/raslint/report.h"
#include "tools/raslint/rules.h"

namespace ras {
namespace raslint {

// Expands `paths` (files or directories, relative to `root`) into a sorted,
// de-duplicated list of repo-relative .h/.cc/.cpp files. Directory walks skip
// hidden entries and any directory whose name starts with "build".
std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& paths);

// Lints every file in `files` (repo-relative; read from `root`). Unreadable
// files become a diagnostic rather than a crash.
RunSummary LintFiles(const std::string& root, const std::vector<std::string>& files,
                     const LintConfig& config = LintConfig());

}  // namespace raslint
}  // namespace ras

#endif  // RAS_TOOLS_RASLINT_DRIVER_H_
