// raslint driver: walks the tree, pairs .cc files with their same-stem
// headers, runs the per-file rules in parallel, then one cross-TU Project
// pass over everything. Shared between the CLI (raslint_main.cc) and the
// test suite's full-repo meta-scan.

#ifndef RAS_TOOLS_RASLINT_DRIVER_H_
#define RAS_TOOLS_RASLINT_DRIVER_H_

#include <string>
#include <utility>
#include <vector>

#include "tools/raslint/report.h"
#include "tools/raslint/rules.h"

namespace ras {
namespace raslint {

// Expands `paths` (files or directories, relative to `root`) into a sorted,
// de-duplicated list of repo-relative .h/.cc/.cpp files. Directory walks skip
// hidden entries and any directory whose name starts with "build".
std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& paths);

// Lints every file in `files` (repo-relative; read from `root`). Unreadable
// files become a diagnostic rather than a crash. Per-file analysis fans out
// over a ThreadPool (config.scan_threads workers; 0 = hardware concurrency);
// results merge back in file order, so output is identical at any thread
// count. The cross-TU Project pass then runs once, serially.
RunSummary LintFiles(const std::string& root, const std::vector<std::string>& files,
                     const LintConfig& config = LintConfig());

// Same pipeline over in-memory (path, content) pairs — how tests exercise
// cross-file rules (two-file lock inversions, call-graph-indirect blocking)
// without touching disk. Companion headers are found among `sources`.
RunSummary LintSources(const std::vector<std::pair<std::string, std::string>>& sources,
                       const LintConfig& config = LintConfig());

}  // namespace raslint
}  // namespace ras

#endif  // RAS_TOOLS_RASLINT_DRIVER_H_
