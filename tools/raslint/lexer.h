// raslint's lexer: a line-aware C++ tokenizer, deliberately not a parser.
//
// The linter's rules are token-pattern and scope-pattern rules (see
// tools/raslint/rules.cc and the semantic layer in ast.h/symbols.h), so the
// lexer only needs to get five things exactly right:
//   1. comments and string/char literals never produce identifier tokens
//      (otherwise `// uses steady_clock` or "mt19937" in a string would
//      trip a rule);
//   2. every token knows its 1-based source line, for file:line diagnostics —
//      including across backslash line-continuations (multi-line macros,
//      spliced comments, spliced string literals) and `#` characters inside
//      raw strings, neither of which may desynchronize the line counter;
//   3. `// NOLINT(ras-x)` / `// NOLINTNEXTLINE(ras-x)` suppressions are
//      harvested from comments with the line they apply to;
//   4. `// RASLINT-HOT` markers are harvested: a function defined on the
//      marker's line or the line after is a hot-path root for the
//      ras-blocking-in-hot-path rule;
//   5. preprocessor lines are captured structurally (#include targets and
//      the #ifndef/#define include-guard pair) instead of as tokens.

#ifndef RAS_TOOLS_RASLINT_LEXER_H_
#define RAS_TOOLS_RASLINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ras {
namespace raslint {

struct Token {
  enum class Kind {
    kIdentifier,  // [A-Za-z_][A-Za-z0-9_]*
    kNumber,      // numeric literal (pp-number, loosely)
    kString,      // string or char literal, raw strings included
    kPunct,       // single punctuation char; "::" and "->" are one token each
  };
  Kind kind;
  std::string text;
  int line;
};

struct Include {
  std::string path;
  bool angled;
  int line;
};

// The first #ifndef/#define pair and any #pragma once, for guard checking.
struct GuardInfo {
  bool has_ifndef = false;
  std::string ifndef_name;
  bool has_define_match = false;  // A #define of ifndef_name follows.
  bool has_pragma_once = false;
};

struct FileScan {
  std::string path;  // Repo-relative with forward slashes.
  std::vector<Token> tokens;
  std::vector<Include> includes;
  GuardInfo guard;
  // line -> rules suppressed on that line; the wildcard "*" suppresses all.
  std::map<int, std::set<std::string>> nolint;
  // Lines carrying a `RASLINT-HOT` comment marker (hot-path root functions).
  std::set<int> hot_lines;
  int num_lines = 0;
};

// Tokenizes `content`. Never fails: malformed input degrades to best-effort
// tokens, which at worst means a rule misses — the linter must not be the
// thing that breaks the build on weird-but-legal code.
FileScan Lex(const std::string& path, const std::string& content);

}  // namespace raslint
}  // namespace ras

#endif  // RAS_TOOLS_RASLINT_LEXER_H_
