#include "tools/raslint/symbols.h"

#include <algorithm>
#include <map>
#include <set>

namespace ras {
namespace raslint {
namespace {

// owner_fn sentinel: the field is function-local in the companion file, so it
// can never be in scope in the file being walked.
constexpr int kCompanionLocal = -2;

bool IsIdent(const Token& t) { return t.kind == Token::Kind::kIdentifier; }
bool IsIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdentifier && t.text == text;
}
bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

int ForwardMatch(const std::vector<Token>& toks, int open, const char* open_text,
                 const char* close_text) {
  int depth = 0;
  for (int k = open; k < static_cast<int>(toks.size()) && k - open < 4096; ++k) {
    if (IsPunct(toks[k], open_text)) ++depth;
    if (IsPunct(toks[k], close_text)) {
      if (--depth == 0) return k;
    }
  }
  return -1;
}

int BackwardMatch(const std::vector<Token>& toks, int close, const char* open_text,
                  const char* close_text) {
  int depth = 0;
  for (int k = close; k >= 0 && close - k < 4096; --k) {
    if (IsPunct(toks[k], close_text)) ++depth;
    if (IsPunct(toks[k], open_text)) {
      if (--depth == 0) return k;
    }
  }
  return -1;
}

bool IsMemberSep(const Token& t) {
  return t.kind == Token::Kind::kPunct && (t.text == "." || t.text == "->");
}

// Index of the first token of the postfix chain ending at `idx`:
// `wal_->AppendTorn` -> index of `wal_`; `util::Foo` -> index of `util`.
int ChainStart(const std::vector<Token>& toks, int idx) {
  int k = idx;
  while (k >= 2 && (IsMemberSep(toks[k - 1]) || IsPunct(toks[k - 1], "::")) &&
         IsIdent(toks[k - 2])) {
    k -= 2;
  }
  return k;
}

// Joins a member chain with `->` normalized to `.` so `sh->mu` and `sh.mu`
// compare equal.
std::string JoinChain(const std::vector<Token>& toks, int from, int to) {
  std::string out;
  for (int k = from; k <= to; ++k) {
    out += IsMemberSep(toks[k]) ? "." : toks[k].text;
  }
  return out;
}

// Blocking call sinks: names that, called bare or ::/std::-qualified, reach
// the filesystem or the scheduler. CondVar::Wait and ThreadPool::Wait are
// deliberately absent — waiting on a condition is how the concurrency model
// works, not a hot-path bug.
const std::set<std::string>& CallSinks() {
  static const std::set<std::string> kSet = {
      "fsync",    "fdatasync", "fopen",     "fwrite",      "fread",  "fflush",
      "fclose",   "fprintf",   "fputs",     "fgets",       "printf", "puts",
      "rename",   "ftruncate", "truncate",  "system",      "sleep",  "usleep",
      "nanosleep", "sleep_for", "sleep_until"};
  return kSet;
}

// std::-qualified stream objects/types whose use implies console or file IO.
const std::set<std::string>& StreamSinks() {
  static const std::set<std::string> kSet = {"cout", "cerr", "clog", "ofstream",
                                             "ifstream", "fstream"};
  return kSet;
}

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",      "while",    "switch",      "return",   "sizeof",
      "alignof", "catch",   "new",      "delete",      "throw",    "static_cast",
      "dynamic_cast", "reinterpret_cast", "const_cast", "decltype", "noexcept",
      "static_assert", "assert", "defined", "alignas", "typeid"};
  return kSet;
}

void HarvestGuarded(const FileScan& scan, const AstFile& ast,
                    std::vector<GuardedField>* out) {
  const std::vector<Token>& toks = scan.tokens;
  for (int i = 0; i + 2 < static_cast<int>(toks.size()); ++i) {
    if (!IsIdent(toks[i]) || !IsIdent(toks[i + 1], "GUARDED_BY") ||
        !IsPunct(toks[i + 2], "(")) {
      continue;
    }
    int close = ForwardMatch(toks, i + 2, "(", ")");
    if (close < 0) continue;
    GuardedField g;
    g.field = toks[i].text;
    g.guard = JoinChain(toks, i + 3, close - 1);
    g.line = toks[i].line;
    g.decl_tok = i;

    // Innermost class scope containing the declaration, and — when that
    // class is itself inside a function body — the owning function.
    int class_scope = -1;
    for (int s = 0; s < static_cast<int>(ast.scopes.size()); ++s) {
      const Scope& sc = ast.scopes[s];
      if (sc.kind != Scope::Kind::kClass || sc.close_tok < 0) continue;
      if (sc.open_tok < i && i < sc.close_tok &&
          (class_scope < 0 || sc.open_tok > ast.scopes[class_scope].open_tok)) {
        class_scope = s;
      }
    }
    if (class_scope >= 0) {
      g.owner_class = ast.scopes[class_scope].name;
      for (int p = ast.scopes[class_scope].parent; p >= 0; p = ast.scopes[p].parent) {
        if (ast.scopes[p].kind == Scope::Kind::kFunction) {
          g.owner_fn = ast.scopes[p].function;
          break;
        }
      }
    }
    if (g.owner_fn >= 0 && class_scope >= 0) {
      // Instances of the local struct: `} sh;` after the class body and
      // `Shared sh;` declarations in the owning function.
      const Scope& cls = ast.scopes[class_scope];
      if (cls.close_tok + 1 < static_cast<int>(toks.size()) &&
          IsIdent(toks[cls.close_tok + 1])) {
        g.instances.insert(toks[cls.close_tok + 1].text);
      }
      const FunctionSig& owner = ast.functions[g.owner_fn];
      if (!cls.name.empty() && owner.body_open >= 0 && owner.body_close > 0) {
        for (int k = owner.body_open; k + 1 < owner.body_close; ++k) {
          if (IsIdent(toks[k]) && toks[k].text == cls.name && IsIdent(toks[k + 1])) {
            g.instances.insert(toks[k + 1].text);
          }
        }
      }
    }
    out->push_back(std::move(g));
  }
}

// Everything the per-function walk needs to share.
struct WalkContext {
  const FileScan& scan;
  const AstFile& ast;
  const std::map<int, int>& scope_by_open;  // open_tok -> scope idx.
  const std::map<std::string, std::vector<GuardedField>>& guarded;  // by field.
  const std::map<std::string, std::vector<std::string>>& decl_requires;
};

// One brace frame of the held-lock walk.
struct Frame {
  std::vector<std::string> entry_held;
  std::vector<std::string> scoped;  // RAII MutexLock raws owned by this frame.
  bool manual_change = false;
  bool early_exit = false;
  bool is_lambda = false;
};

void WalkFunction(const WalkContext& ctx, int fn_index, FileSemantics* out) {
  const std::vector<Token>& toks = ctx.scan.tokens;
  const FunctionSig& sig = ctx.ast.functions[fn_index];
  if (sig.body_open < 0 || sig.body_close < 0) return;

  FunctionSem sem;
  sem.sig = sig;

  // Mutexes declared in the body: `Mutex name;` (canonicalized per-function).
  std::set<std::string> local_mutexes;
  for (int k = sig.body_open; k < sig.body_close - 1; ++k) {
    if (!IsIdent(toks[k], "Mutex") || !IsIdent(toks[k + 1])) continue;
    if (k >= 1 && (IsMemberSep(toks[k - 1]) || IsPunct(toks[k - 1], "::"))) continue;
    local_mutexes.insert(toks[k + 1].text);
  }

  auto canon = [&](const std::string& raw) -> std::string {
    if (raw.find("::") != std::string::npos) return raw;
    if (raw.find('.') != std::string::npos) return sig.qualified + "/" + raw;
    if (!raw.empty() && raw.back() == '_') {
      return sig.class_name.empty() ? sig.qualified + "/" + raw
                                    : sig.class_name + "::" + raw;
    }
    if (local_mutexes.count(raw) > 0) return sig.qualified + "/" + raw;
    return raw;
  };

  std::vector<std::string> held;
  auto canon_held = [&] {
    std::vector<std::string> out_held;
    out_held.reserve(held.size());
    for (const std::string& h : held) out_held.push_back(canon(h));
    std::sort(out_held.begin(), out_held.end());
    out_held.erase(std::unique(out_held.begin(), out_held.end()), out_held.end());
    return out_held;
  };

  // REQUIRES(...) on the definition or its header declaration seed the set.
  for (const std::string& r : sig.requires_locks) held.push_back(r);
  auto decl_it = ctx.decl_requires.find(sig.qualified);
  if (decl_it != ctx.decl_requires.end()) {
    for (const std::string& r : decl_it->second) {
      if (std::find(held.begin(), held.end(), r) == held.end()) held.push_back(r);
    }
  }

  const bool is_ctor_or_dtor =
      !sig.class_name.empty() &&
      (sig.name == sig.class_name || sig.name == "~" + sig.class_name);

  std::vector<Frame> frames;
  int i = sig.body_open;
  while (i <= sig.body_close && i < static_cast<int>(toks.size())) {
    const Token& t = toks[i];

    if (IsPunct(t, "{")) {
      auto sit = ctx.scope_by_open.find(i);
      const Scope* scope =
          sit == ctx.scope_by_open.end() ? nullptr : &ctx.ast.scopes[sit->second];
      if (scope != nullptr && scope->kind == Scope::Kind::kClass) {
        i = scope->close_tok > i ? scope->close_tok + 1 : sig.body_close + 1;
        continue;  // Local struct: fields are declarations, methods walk alone.
      }
      if (scope != nullptr && scope->kind == Scope::Kind::kFunction &&
          scope->function != fn_index) {
        i = scope->close_tok > i ? scope->close_tok + 1 : sig.body_close + 1;
        continue;  // Nested definition, walked separately.
      }
      Frame f;
      f.entry_held = held;
      if (scope != nullptr && scope->kind == Scope::Kind::kLambda) {
        f.is_lambda = true;
        held.clear();  // The body usually runs later, possibly elsewhere.
      }
      frames.push_back(std::move(f));
      ++i;
      continue;
    }

    if (IsPunct(t, "}")) {
      if (!frames.empty()) {
        Frame f = std::move(frames.back());
        frames.pop_back();
        for (const std::string& raw : f.scoped) {
          auto it = std::find(held.rbegin(), held.rend(), raw);
          if (it != held.rend()) held.erase(std::next(it).base());
        }
        if (f.is_lambda || (f.manual_change && f.early_exit)) {
          held = f.entry_held;  // Early-exit heuristic / deferred lambda body.
        }
      }
      if (frames.empty()) break;  // Function body closed.
      ++i;
      continue;
    }

    if (IsIdent(t) && (t.text == "return" || t.text == "break" || t.text == "continue" ||
                       t.text == "throw")) {
      if (!frames.empty()) frames.back().early_exit = true;
      ++i;
      continue;
    }

    // RAII acquisition: `MutexLock lock(&mu);` (also brace-init).
    if (IsIdent(t, "MutexLock") && i + 2 < static_cast<int>(toks.size()) &&
        IsIdent(toks[i + 1]) &&
        (IsPunct(toks[i + 2], "(") || IsPunct(toks[i + 2], "{"))) {
      const char* open = toks[i + 2].text == "(" ? "(" : "{";
      const char* close = toks[i + 2].text == "(" ? ")" : "}";
      int end = ForwardMatch(toks, i + 2, open, close);
      if (end > 0) {
        int from = i + 3;
        if (from < end && IsPunct(toks[from], "&")) ++from;
        std::string raw = JoinChain(toks, from, end - 1);
        sem.acquires.push_back(AcquireSite{canon(raw), canon_held(), t.line});
        if (!frames.empty()) frames.back().scoped.push_back(raw);
        held.push_back(std::move(raw));
        i = end + 1;
        continue;
      }
    }

    // Manual `chain.Lock()` / `chain.Unlock()`.
    if (IsIdent(t) && (t.text == "Lock" || t.text == "Unlock") && i >= 2 &&
        IsMemberSep(toks[i - 1]) && i + 1 < static_cast<int>(toks.size()) &&
        IsPunct(toks[i + 1], "(")) {
      int start = ChainStart(toks, i);
      std::string raw = JoinChain(toks, start, i - 2);
      if (t.text == "Lock") {
        sem.acquires.push_back(AcquireSite{canon(raw), canon_held(), t.line});
        held.push_back(raw);
      } else {
        auto it = std::find(held.rbegin(), held.rend(), raw);
        if (it != held.rend()) held.erase(std::next(it).base());
      }
      if (!frames.empty()) frames.back().manual_change = true;
      i += 2;
      continue;
    }

    if (IsIdent(t)) {
      const bool member = i >= 1 && IsMemberSep(toks[i - 1]);
      const bool colon_qualified = i >= 1 && IsPunct(toks[i - 1], "::");
      const bool std_qualified =
          colon_qualified && i >= 2 && IsIdent(toks[i - 2], "std");
      const bool next_call = i + 1 < static_cast<int>(toks.size()) && IsPunct(toks[i + 1], "(");

      // Blocking sinks.
      if (!member && next_call && CallSinks().count(t.text) > 0) {
        sem.sinks.push_back(SinkSite{t.text, t.line, canon_held()});
        ++i;
        continue;
      }
      if (std_qualified && StreamSinks().count(t.text) > 0) {
        sem.sinks.push_back(SinkSite{"std::" + t.text, t.line, canon_held()});
        ++i;
        continue;
      }

      // Guarded-field access. A field name alone is not enough — the entry
      // must be in scope here: function-local struct fields only match
      // `instance.field` inside their owning function, class members only
      // match from that class's own methods (or through `this`).
      auto git = ctx.guarded.find(t.text);
      if (git != ctx.guarded.end() && !is_ctor_or_dtor && !next_call &&
          !colon_qualified &&
          !(i + 1 < static_cast<int>(toks.size()) && IsIdent(toks[i + 1], "GUARDED_BY"))) {
        std::string obj;
        if (member) {
          int start = ChainStart(toks, i);
          obj = JoinChain(toks, start, i - 2);
        }
        for (const GuardedField& g : git->second) {
          std::string required;
          if (g.owner_fn == kCompanionLocal) continue;
          if (g.owner_fn >= 0) {
            if (g.owner_fn != fn_index || obj.empty() ||
                g.instances.count(obj) == 0) {
              continue;
            }
            required = obj + "." + g.guard;
          } else if (!g.owner_class.empty()) {
            if (sig.class_name != g.owner_class) continue;
            required = (obj.empty() || obj == "this") ? g.guard
                                                      : obj + "." + g.guard;
          } else {
            required = (obj.empty() || obj == "this") ? g.guard
                                                      : obj + "." + g.guard;
          }
          if (std::find(held.begin(), held.end(), required) == held.end()) {
            out->guarded_violations.push_back(
                GuardedViolation{t.text, required, t.line});
          }
          break;  // First in-scope entry decides.
        }
        ++i;
        continue;
      }

      // Call sites.
      if (next_call && CallKeywords().count(t.text) == 0 &&
          !IsThreadAnnotation(t.text) && t.text != "MutexLock") {
        CallSite cs;
        cs.callee = t.text;
        cs.member = member;
        cs.line = t.line;
        cs.held = canon_held();
        if (colon_qualified && i >= 2 && IsIdent(toks[i - 2])) {
          cs.qualifier = toks[i - 2].text;
        }
        int start = ChainStart(toks, i);
        int close = ForwardMatch(toks, i + 1, "(", ")");
        bool stmt_position = false;
        if (start == 0) {
          stmt_position = true;
        } else {
          const Token& before = toks[start - 1];
          if (IsPunct(before, ";") || IsPunct(before, "{") || IsPunct(before, "}") ||
              IsIdent(before, "else")) {
            stmt_position = true;
          } else if (IsPunct(before, ")")) {
            int open = BackwardMatch(toks, start - 1, "(", ")");
            if (open >= 1 && IsIdent(toks[open - 1]) &&
                (toks[open - 1].text == "if" || toks[open - 1].text == "while" ||
                 toks[open - 1].text == "for")) {
              stmt_position = true;
            }
          }
        }
        cs.discarded = stmt_position && close > 0 &&
                       close + 1 < static_cast<int>(toks.size()) &&
                       IsPunct(toks[close + 1], ";");
        sem.calls.push_back(std::move(cs));
        ++i;
        continue;
      }
    }

    ++i;
  }

  out->functions.push_back(std::move(sem));
}

}  // namespace

bool IsBlockingCall(const std::string& name) { return CallSinks().count(name) > 0; }

FileSemantics BuildSemantics(const FileScan& scan, const AstFile& ast,
                             const FileScan* companion, const AstFile* companion_ast) {
  FileSemantics sem;
  sem.path = scan.path;

  std::vector<GuardedField> guarded_list;
  HarvestGuarded(scan, ast, &guarded_list);
  if (companion != nullptr && companion_ast != nullptr) {
    size_t before = guarded_list.size();
    HarvestGuarded(*companion, *companion_ast, &guarded_list);
    // Function-local struct fields in the companion belong to functions of
    // that file, not this one; mark them so the walk below never matches.
    for (size_t k = before; k < guarded_list.size(); ++k) {
      if (guarded_list[k].owner_fn >= 0) guarded_list[k].owner_fn = kCompanionLocal;
    }
  }
  std::map<std::string, std::vector<GuardedField>> guarded;
  for (const GuardedField& g : guarded_list) guarded[g.field].push_back(g);
  sem.guarded = std::move(guarded_list);

  std::map<std::string, std::vector<std::string>> decl_requires;
  auto harvest_decls = [&](const AstFile& a) {
    for (const FunctionSig& f : a.functions) {
      if (f.is_definition) continue;
      sem.declarations.push_back(f);
      if (!f.requires_locks.empty()) {
        std::vector<std::string>& reqs = decl_requires[f.qualified];
        for (const std::string& r : f.requires_locks) {
          if (std::find(reqs.begin(), reqs.end(), r) == reqs.end()) reqs.push_back(r);
        }
      }
    }
  };
  harvest_decls(ast);
  if (companion_ast != nullptr) harvest_decls(*companion_ast);

  std::map<int, int> scope_by_open;
  for (int s = 0; s < static_cast<int>(ast.scopes.size()); ++s) {
    scope_by_open[ast.scopes[s].open_tok] = s;
  }

  WalkContext ctx{scan, ast, scope_by_open, guarded, decl_requires};
  for (int f = 0; f < static_cast<int>(ast.functions.size()); ++f) {
    if (ast.functions[f].is_definition) WalkFunction(ctx, f, &sem);
  }
  return sem;
}

}  // namespace raslint
}  // namespace ras
