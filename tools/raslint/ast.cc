#include "tools/raslint/ast.h"

#include <set>

namespace ras {
namespace raslint {
namespace {

bool IsIdent(const Token& t) { return t.kind == Token::Kind::kIdentifier; }
bool IsIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdentifier && t.text == text;
}
bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kSet = {"if",    "for",   "while", "switch",
                                             "catch", "constexpr"};
  return kSet;
}

// Statement keywords that can never be a callee / declared name.
const std::set<std::string>& StmtKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",    "while",  "switch", "return", "case",   "goto",
      "else",   "do",     "new",    "delete", "throw",  "sizeof", "alignof",
      "co_return", "co_await", "co_yield"};
  return kSet;
}

// Finds the index of the opener matching the closer at `close`, scanning
// backward; -1 if unbalanced or out of the walk budget.
int BackwardMatch(const std::vector<Token>& toks, int close, const char* open_text,
                  const char* close_text) {
  int depth = 0;
  for (int k = close; k >= 0 && close - k < 4096; --k) {
    if (IsPunct(toks[k], close_text)) ++depth;
    if (IsPunct(toks[k], open_text)) {
      if (--depth == 0) return k;
    }
  }
  return -1;
}

// Splits an annotation argument list (tokens in (open, close)) on top-level
// commas, joining each argument's tokens.
std::vector<std::string> AnnotationArgs(const std::vector<Token>& toks, int open, int close) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (int k = open + 1; k < close; ++k) {
    if (IsPunct(toks[k], "(") || IsPunct(toks[k], "<")) ++depth;
    if (IsPunct(toks[k], ")") || IsPunct(toks[k], ">")) --depth;
    if (depth == 0 && IsPunct(toks[k], ",")) {
      if (!cur.empty()) args.push_back(cur);
      cur.clear();
      continue;
    }
    cur += toks[k].text;
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

// What the bounded backward walk from a `{` (or `;`) concluded.
struct HeaderInfo {
  Scope::Kind kind = Scope::Kind::kGeneric;
  std::string class_name;                   // kClass.
  int name_tok = -1;                        // kFunction: the name identifier.
  bool trailing_status = false;             // `-> Status` / `-> Result<...>`.
  std::vector<std::string> requires_locks;  // REQUIRES(...) args seen.
};

// Classifies the construct whose `{` (for bodies) or `;` (for declarations)
// sits at token index `end` by walking backward over the header tokens.
// Bounded: gives up (kGeneric) after `kBudget` steps.
HeaderInfo ClassifyHeader(const std::vector<Token>& toks, int end) {
  constexpr int kBudget = 512;
  HeaderInfo info;
  int k = end - 1;
  int steps = 0;
  while (k >= 0 && ++steps < kBudget) {
    const Token& t = toks[k];
    if (t.kind == Token::Kind::kPunct) {
      const std::string& p = t.text;
      if (p == ";" || p == "{" || p == "=" || p == "(" || p == "[") return info;
      if (p == ")") {
        int m = BackwardMatch(toks, k, "(", ")");
        if (m <= 0) return info;
        const Token& prev = toks[m - 1];
        if (IsPunct(prev, "]")) {
          info.kind = Scope::Kind::kLambda;
          return info;
        }
        if (!IsIdent(prev)) return info;
        if (ControlKeywords().count(prev.text)) return info;
        if (prev.text == "noexcept") {
          k = m - 2;
          continue;
        }
        if (IsThreadAnnotation(prev.text)) {
          if (prev.text == "REQUIRES" || prev.text == "REQUIRES_SHARED") {
            for (std::string& a : AnnotationArgs(toks, m, k)) {
              info.requires_locks.push_back(std::move(a));
            }
          }
          k = m - 2;
          continue;
        }
        // Ctor-init-list member `a_(...)`: skip past it.
        if (m - 2 >= 0 && (IsPunct(toks[m - 2], ":") || IsPunct(toks[m - 2], ","))) {
          k = m - 2;
          continue;
        }
        if (StmtKeywords().count(prev.text)) return info;
        info.kind = Scope::Kind::kFunction;
        info.name_tok = m - 1;
        return info;
      }
      if (p == "}") {
        // Brace-init ctor-list member `a_{...}`: skip; anything else is a
        // statement boundary.
        int m = BackwardMatch(toks, k, "{", "}");
        if (m > 1 && IsIdent(toks[m - 1]) &&
            (IsPunct(toks[m - 2], ":") || IsPunct(toks[m - 2], ","))) {
          k = m - 2;
          continue;
        }
        return info;
      }
      if (p == "]") {
        info.kind = Scope::Kind::kLambda;
        return info;
      }
      if (p == ">") {
        // Trailing return `-> Result<T>`: unwind the template args.
        int m = BackwardMatch(toks, k, "<", ">");
        if (m > 0 && IsIdent(toks[m - 1])) {
          if (toks[m - 1].text == "Result") info.trailing_status = true;
          k = m - 1;
          continue;
        }
        return info;
      }
      if (p == ":" || p == ",") {
        --k;
        continue;
      }
      if (p == "->" || p == "::" || p == "*" || p == "&") {
        --k;
        continue;
      }
      return info;
    }
    if (IsIdent(t)) {
      const std::string& w = t.text;
      if (w == "const" || w == "override" || w == "final" || w == "mutable" ||
          w == "noexcept" || w == "try" || w == "inline") {
        --k;
        continue;
      }
      if (w == "else" || w == "do" || w == "return") return info;
      if (w == "namespace") {
        info.kind = Scope::Kind::kNamespace;
        return info;
      }
      if (k >= 1 && IsIdent(toks[k - 1])) {
        const std::string& prev = toks[k - 1].text;
        if (prev == "namespace") {
          info.kind = Scope::Kind::kNamespace;
          return info;
        }
        if (prev == "class" || prev == "struct" || prev == "union") {
          info.kind = Scope::Kind::kClass;
          info.class_name = w;
          return info;
        }
        // Base-class clause: `class Foo : public Bar {`.
        if (prev == "public" || prev == "protected" || prev == "private" ||
            prev == "virtual") {
          k -= 2;
          continue;
        }
      }
      if (w == "class" || w == "struct" || w == "union" || w == "enum") {
        info.kind = Scope::Kind::kClass;  // Anonymous aggregate.
        return info;
      }
      // `class CAPABILITY("mutex") Mutex {`: the macro call sits between the
      // keyword and the name.
      if (k >= 1 && IsPunct(toks[k - 1], ")")) {
        int m = BackwardMatch(toks, k - 1, "(", ")");
        if (m >= 2 && IsIdent(toks[m - 1]) && IsThreadAnnotation(toks[m - 1].text) &&
            (IsIdent(toks[m - 2], "class") || IsIdent(toks[m - 2], "struct"))) {
          info.kind = Scope::Kind::kClass;
          info.class_name = w;
          return info;
        }
        return info;
      }
      if (k >= 1 && (IsPunct(toks[k - 1], "::") || IsPunct(toks[k - 1], "->"))) {
        k -= 2;  // Qualified-name part / trailing return type.
        if (k + 1 < static_cast<int>(toks.size()) && IsPunct(toks[k + 1], "->") &&
            (w == "Status" || w == "Result")) {
          info.trailing_status = true;
        }
        continue;
      }
      return info;
    }
    return info;
  }
  return info;
}

// True if the token at `idx` (the start of a callee/declarator name chain)
// is preceded by a plausible return type, i.e. this is a declaration rather
// than a call.
bool PrecededByType(const std::vector<Token>& toks, int idx) {
  if (idx <= 0) return false;
  const Token& t = toks[idx - 1];
  if (IsIdent(t)) {
    if (StmtKeywords().count(t.text)) return false;
    if (idx >= 2 && (IsPunct(toks[idx - 2], ".") || IsPunct(toks[idx - 2], "->"))) {
      return false;  // Member expression, not a type.
    }
    return true;
  }
  return IsPunct(t, ">") || IsPunct(t, "*") || IsPunct(t, "&");
}

}  // namespace

bool IsThreadAnnotation(const std::string& ident) {
  static const std::set<std::string> kSet = {
      "GUARDED_BY",      "PT_GUARDED_BY",    "REQUIRES",
      "REQUIRES_SHARED", "ACQUIRE",          "ACQUIRE_SHARED",
      "RELEASE",         "RELEASE_SHARED",   "TRY_ACQUIRE",
      "EXCLUDES",        "ASSERT_CAPABILITY", "RETURN_CAPABILITY",
      "CAPABILITY",      "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS"};
  return kSet.count(ident) > 0;
}

AstFile BuildAst(const FileScan& scan) {
  const std::vector<Token>& toks = scan.tokens;
  AstFile ast;
  std::vector<int> stack;  // Open scope indices.

  // Builds a FunctionSig from a classified header; `body_open` is -1 for
  // declarations.
  auto make_function = [&](const HeaderInfo& info, int body_open) -> FunctionSig {
    FunctionSig sig;
    int name_tok = info.name_tok;
    sig.name = toks[name_tok].text;
    if (name_tok >= 1 && IsPunct(toks[name_tok - 1], "~")) {
      sig.name = "~" + sig.name;
      --name_tok;  // Chain unwinding continues from the '~'.
    }
    // Unwind an explicit `Ns::Class::` qualifier chain.
    std::vector<std::string> quals;
    int k = name_tok;
    while (k >= 2 && IsPunct(toks[k - 1], "::") && IsIdent(toks[k - 2])) {
      quals.push_back(toks[k - 2].text);
      k -= 2;
    }
    if (!quals.empty()) {
      sig.class_name = quals.front();  // Innermost qualifier.
    } else {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (ast.scopes[*it].kind == Scope::Kind::kClass) {
          sig.class_name = ast.scopes[*it].name;
          break;
        }
      }
    }
    sig.qualified = sig.class_name.empty() ? sig.name : sig.class_name + "::" + sig.name;
    sig.line = toks[info.name_tok].line;
    sig.requires_locks = info.requires_locks;
    sig.body_open = body_open;
    sig.is_definition = body_open >= 0;
    sig.hot = scan.hot_lines.count(sig.line) > 0 || scan.hot_lines.count(sig.line - 1) > 0;
    // Return type: the token just left of the name chain (Status), or a
    // closing template `Result<...>`, or a trailing `-> Status`.
    sig.returns_status = info.trailing_status;
    if (k >= 1) {
      const Token& rt = toks[k - 1];
      if (IsIdent(rt, "Status")) sig.returns_status = true;
      if (IsPunct(rt, ">")) {
        int m = BackwardMatch(toks, k - 1, "<", ">");
        if (m > 0 && IsIdent(toks[m - 1], "Result")) sig.returns_status = true;
      }
    }
    return sig;
  };

  for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      HeaderInfo info = ClassifyHeader(toks, i);
      Scope scope;
      scope.kind = info.kind;
      scope.open_tok = i;
      scope.parent = stack.empty() ? -1 : stack.back();
      scope.name = info.class_name;
      if (info.kind == Scope::Kind::kFunction) {
        FunctionSig sig = make_function(info, i);
        sig.body_scope = static_cast<int>(ast.scopes.size());
        scope.function = static_cast<int>(ast.functions.size());
        ast.functions.push_back(std::move(sig));
      }
      stack.push_back(static_cast<int>(ast.scopes.size()));
      ast.scopes.push_back(std::move(scope));
      continue;
    }
    if (IsPunct(t, "}")) {
      if (!stack.empty()) {
        Scope& s = ast.scopes[stack.back()];
        s.close_tok = i;
        if (s.function >= 0) ast.functions[s.function].body_close = i;
        stack.pop_back();
      }
      continue;
    }
    if (IsPunct(t, ";")) {
      // Declaration harvest: `RetType Name(...) QUALIFIERS ;` — headers feed
      // REQUIRES lists and Status return types for out-of-file definitions.
      int end = i;
      // `= 0` / `= default` / `= delete` before the ';'.
      if (end >= 2 && IsPunct(toks[end - 2], "=")) end -= 2;
      if (end - 1 < 0 || !IsPunct(toks[end - 1], ")")) {
        // Walk back over trailing annotation macros to find a ')' param list.
        int j = end - 1;
        while (j > 0 && IsPunct(toks[j], ")")) {
          int m = BackwardMatch(toks, j, "(", ")");
          if (m <= 0 || !IsIdent(toks[m - 1]) || !IsThreadAnnotation(toks[m - 1].text)) break;
          j = m - 2;
        }
        if (j < 0 || !IsPunct(toks[j], ")")) continue;
      }
      HeaderInfo info = ClassifyHeader(toks, i);
      if (info.kind != Scope::Kind::kFunction || info.name_tok < 0) continue;
      // Distinguish a declaration from a call statement: a declaration has a
      // return type before its name chain.
      int chain_start = info.name_tok;
      while (chain_start >= 2 && IsPunct(toks[chain_start - 1], "::") &&
             IsIdent(toks[chain_start - 2])) {
        chain_start -= 2;
      }
      if (chain_start >= 1 && IsPunct(toks[chain_start - 1], "~")) --chain_start;
      if (!PrecededByType(toks, chain_start)) continue;
      ast.functions.push_back(make_function(info, -1));
    }
  }
  return ast;
}

}  // namespace raslint
}  // namespace ras
