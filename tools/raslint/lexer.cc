#include "tools/raslint/lexer.h"

#include <cctype>

namespace ras {
namespace raslint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Parses NOLINT / NOLINTNEXTLINE directives out of one comment's text and
// records them into `scan`. `line` is the line the comment starts on.
void HarvestNolint(const std::string& comment, int line, FileScan& scan) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + 6;
    int target = line;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = line + 1;
    }
    std::set<std::string>& rules = scan.nolint[target];
    if (after < comment.size() && comment[after] == '(') {
      size_t close = comment.find(')', after);
      std::string list = comment.substr(
          after + 1, close == std::string::npos ? std::string::npos : close - after - 1);
      std::string name;
      for (char c : list) {
        if (c == ',' || c == ' ') {
          if (!name.empty()) rules.insert(name);
          name.clear();
        } else {
          name.push_back(c);
        }
      }
      if (!name.empty()) rules.insert(name);
    } else {
      rules.insert("*");  // Bare NOLINT: suppress everything on the line.
    }
    pos = after;
  }
  if (comment.find("RASLINT-HOT") != std::string::npos) {
    scan.hot_lines.insert(line);
  }
}

// Splits one whitespace-collapsed preprocessor line into directive + rest.
void HandlePreprocessor(const std::string& directive, int line, FileScan& scan,
                        std::string* pending_ifndef) {
  size_t i = 1;  // Skip '#'.
  while (i < directive.size() && std::isspace(static_cast<unsigned char>(directive[i]))) ++i;
  size_t word_start = i;
  while (i < directive.size() && IsIdentChar(directive[i])) ++i;
  std::string word = directive.substr(word_start, i - word_start);
  while (i < directive.size() && std::isspace(static_cast<unsigned char>(directive[i]))) ++i;

  if (word == "include") {
    if (i < directive.size() && (directive[i] == '"' || directive[i] == '<')) {
      char open = directive[i];
      char close = open == '<' ? '>' : '"';
      size_t end = directive.find(close, i + 1);
      if (end != std::string::npos) {
        scan.includes.push_back(
            Include{directive.substr(i + 1, end - i - 1), open == '<', line});
      }
    }
  } else if (word == "ifndef") {
    size_t name_end = i;
    while (name_end < directive.size() && IsIdentChar(directive[name_end])) ++name_end;
    if (!scan.guard.has_ifndef) {
      scan.guard.has_ifndef = true;
      scan.guard.ifndef_name = directive.substr(i, name_end - i);
      *pending_ifndef = scan.guard.ifndef_name;
    }
  } else if (word == "define") {
    size_t name_end = i;
    while (name_end < directive.size() && IsIdentChar(directive[name_end])) ++name_end;
    if (!pending_ifndef->empty() && directive.substr(i, name_end - i) == *pending_ifndef) {
      scan.guard.has_define_match = true;
      pending_ifndef->clear();
    }
  } else if (word == "pragma" && directive.compare(i, 4, "once") == 0) {
    scan.guard.has_pragma_once = true;
  }
}

}  // namespace

FileScan Lex(const std::string& path, const std::string& content) {
  FileScan scan;
  scan.path = path;
  std::string pending_ifndef;

  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // Only whitespace seen since the last newline.

  // Counts lines and tracks line-start state through every consumed byte, so
  // multi-line regions (comments, raw strings, spliced literals) can never
  // desynchronize the counter.
  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      char c = content[i];
      if (c == '\n') {
        ++line;
        at_line_start = true;
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        at_line_start = false;
      }
    }
  };

  while (i < n) {
    char c = content[i];

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Phase-2 line splice between tokens: backslash-newline is whitespace
    // that does NOT start a new logical line.
    if (c == '\\' && i + 1 < n && content[i + 1] == '\n') {
      bool was_line_start = at_line_start;
      advance(2);
      at_line_start = was_line_start;
      continue;
    }

    // Preprocessor directive: '#' first on the line; consume through any
    // backslash continuations, collapsing to a single logical line.
    if (c == '#' && at_line_start) {
      int start_line = line;
      std::string logical;
      while (i < n) {
        char d = content[i];
        if (d == '\\' && i + 1 < n && content[i + 1] == '\n') {
          logical.push_back(' ');
          advance(2);
          continue;
        }
        if (d == '\n') break;
        logical.push_back(d);
        advance(1);
      }
      HandlePreprocessor(logical, start_line, scan, &pending_ifndef);
      continue;
    }
    at_line_start = false;

    // Line comment. A trailing backslash splices the next physical line into
    // the comment (C++ phase-2), so `// ... \` swallows the following line
    // rather than letting it tokenize as code.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      int start_line = line;
      size_t end = i;
      while (end < n) {
        size_t nl = content.find('\n', end);
        if (nl == std::string::npos) {
          end = n;
          break;
        }
        // A backslash immediately before the newline splices it (phase 2).
        if (nl > i && content[nl - 1] == '\\') {
          end = nl + 1;  // Spliced: the comment continues on the next line.
          continue;
        }
        end = nl;
        break;
      }
      HarvestNolint(content.substr(i, end - i), start_line, scan);
      advance(end - i);
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      int start_line = line;
      size_t end = content.find("*/", i + 2);
      size_t len = end == std::string::npos ? n - i : end + 2 - i;
      HarvestNolint(content.substr(i, len), start_line, scan);
      advance(len);
      continue;
    }

    // Raw string literal: R"delim( ... )delim". The body is consumed as one
    // token, so newlines and `#` characters inside it can neither start a
    // bogus preprocessor line nor shift line attribution of later tokens.
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t paren = content.find('(', i + 2);
      if (paren != std::string::npos && paren - i - 2 <= 16) {
        std::string delim = content.substr(i + 2, paren - i - 2);
        std::string closer = ")" + delim + "\"";
        size_t end = content.find(closer, paren + 1);
        size_t len = end == std::string::npos ? n - i : end + closer.size() - i;
        scan.tokens.push_back(Token{Token::Kind::kString, "", line});
        advance(len);
        // Whatever the raw string contained, the next `#` is a directive
        // only if real whitespace-then-newline precedes it.
        at_line_start = false;
        continue;
      }
    }

    // String / char literal. The token carries the literal's source text
    // (escapes un-processed, quotes stripped) so content-sensitive rules like
    // ras-metric-name can validate it; identifier rules ignore kString. An
    // escaped newline (line splice inside the literal) continues the literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line;
      size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) {
          j += 2;  // Escape sequence — including a spliced "\<newline>".
          continue;
        }
        if (content[j] == '\n') break;  // Unterminated: stop at EOL.
        ++j;
      }
      size_t len = (j < n ? j + 1 : n) - i;
      scan.tokens.push_back(
          Token{Token::Kind::kString, content.substr(i + 1, j - i - 1), start_line});
      advance(len);
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(content[j])) ++j;
      scan.tokens.push_back(Token{Token::Kind::kIdentifier, content.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(content[j]) || content[j] == '.' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E')))) {
        ++j;
      }
      scan.tokens.push_back(Token{Token::Kind::kNumber, content.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // "::" and "->" are one token each so rules can match qualified names
    // and member accesses.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      scan.tokens.push_back(Token{Token::Kind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && content[i + 1] == '>') {
      scan.tokens.push_back(Token{Token::Kind::kPunct, "->", line});
      advance(2);
      continue;
    }

    scan.tokens.push_back(Token{Token::Kind::kPunct, std::string(1, c), line});
    advance(1);
  }

  scan.num_lines = line;
  return scan;
}

}  // namespace raslint
}  // namespace ras
