// Diagnostic rendering: human-readable text and the machine-readable JSON
// report CI uploads as an artifact.
//
// JSON schema (schema_version 1):
//   {
//     "tool": "raslint",
//     "schema_version": 1,
//     "files_scanned": <int>,
//     "errors": <int>,
//     "warnings": <int>,
//     "suppressed": <int>,
//     "diagnostics": [
//       {"file": "...", "line": <int>, "rule": "ras-...",
//        "severity": "error"|"warning", "message": "..."}
//     ]
//   }

#ifndef RAS_TOOLS_RASLINT_REPORT_H_
#define RAS_TOOLS_RASLINT_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "tools/raslint/rules.h"

namespace ras {
namespace raslint {

struct RunSummary {
  std::vector<Diagnostic> diagnostics;
  int files_scanned = 0;
  int suppressed = 0;
  double scan_seconds = 0.0;  // Wall time of the file scan (0 when untimed).

  int errors() const;
  int warnings() const;
};

// "src/x.cc:12: error: [ras-wall-clock] ..." per diagnostic, plus a summary
// line.
void WriteText(const RunSummary& summary, std::ostream& os);

void WriteJson(const RunSummary& summary, std::ostream& os);

// SARIF 2.1.0 (https://json.schemastore.org/sarif-2.1.0.json): one run, the
// full rule catalogue under tool.driver.rules, one result per diagnostic
// (level error/warning, physicalLocation with repo-relative uri and a
// startLine clamped to >= 1). Consumed by GitHub code scanning via
// codeql-action/upload-sarif.
void WriteSarif(const RunSummary& summary, std::ostream& os);

}  // namespace raslint
}  // namespace ras

#endif  // RAS_TOOLS_RASLINT_REPORT_H_
