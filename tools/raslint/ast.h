// raslint's scope layer: balanced-brace scope trees and function signatures,
// recovered from the token stream without a real parser.
//
// Every `{` opens a Scope classified by a bounded backward walk over the
// tokens that precede it: function bodies (identifier + balanced parameter
// list + qualifiers/annotations/ctor-init-list), lambdas (`](...)`), classes
// and namespaces, and everything else as generic blocks. Function signatures
// capture what the semantic rules need:
//
//   - the bare and Class::qualified name (explicit `Foo::Bar` qualifiers or
//     the enclosing class scope),
//   - whether the return type is Status / Result<T> (ras-status-discard),
//   - REQUIRES(...) lock lists from thread-safety annotations,
//   - hot-path markers: a `// RASLINT-HOT` comment on the signature line or
//     the line above makes the function a root for ras-blocking-in-hot-path,
//   - the body's token range, so symbols.cc can walk it.
//
// Declarations (`...);`) are also harvested — headers contribute REQUIRES
// lists and Status return types for functions defined elsewhere.
//
// Misclassification degrades softly: an unrecognized construct becomes a
// generic scope and the rules see less, never something wrong.

#ifndef RAS_TOOLS_RASLINT_AST_H_
#define RAS_TOOLS_RASLINT_AST_H_

#include <string>
#include <vector>

#include "tools/raslint/lexer.h"

namespace ras {
namespace raslint {

struct Scope {
  enum class Kind { kGeneric, kNamespace, kClass, kFunction, kLambda };
  Kind kind = Kind::kGeneric;
  int open_tok = -1;   // Index of the '{' token.
  int close_tok = -1;  // Index of the matching '}', or -1 if unterminated.
  int parent = -1;     // Index into AstFile::scopes, -1 for top level.
  std::string name;    // Class name for kClass scopes (may be empty).
  int function = -1;   // Index into AstFile::functions for kFunction scopes.
};

struct FunctionSig {
  std::string name;        // Bare name ("Solve", "~ThreadPool").
  std::string qualified;   // "Class::Solve" when a class is known, else name.
  std::string class_name;  // Empty for free functions.
  int line = 0;            // Line of the name token.
  bool returns_status = false;  // Return type is Status or Result<T>.
  bool is_definition = false;   // Has a body in this file.
  bool hot = false;             // RASLINT-HOT marker on/above the signature.
  std::vector<std::string> requires_locks;  // REQUIRES(...) argument texts.
  int body_open = -1;   // Token index of the body '{' (-1 for declarations).
  int body_close = -1;  // Token index of the body '}' (-1 if unterminated).
  int body_scope = -1;  // Index into AstFile::scopes.
};

struct AstFile {
  std::vector<Scope> scopes;        // In open-token order.
  std::vector<FunctionSig> functions;  // Definitions and declarations.
};

AstFile BuildAst(const FileScan& scan);

// True for the thread-safety annotation macro names from
// src/util/thread_annotations.h (REQUIRES, GUARDED_BY, CAPABILITY, ...).
bool IsThreadAnnotation(const std::string& ident);

}  // namespace raslint
}  // namespace ras

#endif  // RAS_TOOLS_RASLINT_AST_H_
