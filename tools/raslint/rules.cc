#include "tools/raslint/rules.h"

#include <algorithm>
#include <cctype>

#include "tools/raslint/ast.h"
#include "tools/raslint/callgraph.h"

namespace ras {
namespace raslint {
namespace {

constexpr const char* kUnorderedIteration = "ras-unordered-iteration";
constexpr const char* kWallClock = "ras-wall-clock";
constexpr const char* kUnseededRng = "ras-unseeded-rng";
constexpr const char* kNakedThread = "ras-naked-thread";
constexpr const char* kFloatMoney = "ras-float-money";
constexpr const char* kIncludeHygiene = "ras-include-hygiene";
constexpr const char* kMetricName = "ras-metric-name";

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

bool PathMatchesAny(const std::string& path, const std::vector<std::string>& needles) {
  for (const std::string& n : needles) {
    if (Contains(path, n)) return true;
  }
  return false;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

// First two components of a repo-relative path: "src/core/foo.h" -> "src/core".
std::string DirKey(const std::string& path) {
  size_t first = path.find('/');
  if (first == std::string::npos) return path;
  size_t second = path.find('/', first + 1);
  return second == std::string::npos ? path : path.substr(0, second);
}

class RuleContext {
 public:
  RuleContext(const FileScan& scan, const LintConfig& config, FileLintResult& out)
      : scan_(scan), config_(config), out_(out) {}

  bool RuleEnabled(const std::string& rule) const {
    return config_.enabled_rules.empty() || config_.enabled_rules.count(rule) > 0;
  }

  // Appends the diagnostic unless a NOLINT on its line suppresses it.
  void Emit(const char* rule, Severity severity, int line, std::string message) {
    auto it = scan_.nolint.find(line);
    if (it != scan_.nolint.end() &&
        (it->second.count("*") > 0 || it->second.count(rule) > 0)) {
      ++out_.suppressed;
      return;
    }
    out_.diagnostics.push_back(Diagnostic{rule, severity, scan_.path, line, std::move(message)});
  }

  const FileScan& scan() const { return scan_; }
  const LintConfig& config() const { return config_; }

 private:
  const FileScan& scan_;
  const LintConfig& config_;
  FileLintResult& out_;
};

// --- ras-unordered-iteration -------------------------------------------------

// Collects names declared with an unordered container type: after
// `unordered_map</set<` and its balanced template argument list, the next
// identifier (past `*`/`&`) is taken as the declared name. Declarations whose
// name is immediately followed by `(` are functions returning the type and
// are skipped.
void HarvestUnorderedNames(const FileScan& scan, std::set<std::string>& names) {
  const std::vector<Token>& toks = scan.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "unordered_map") && !IsIdent(toks[i], "unordered_set")) continue;
    size_t j = i + 1;
    if (j >= toks.size() || !IsPunct(toks[j], "<")) continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (IsPunct(toks[j], "<")) ++depth;
      if (IsPunct(toks[j], ">")) {
        if (--depth == 0) break;
      }
    }
    if (j >= toks.size()) continue;
    ++j;  // Past the closing '>'.
    if (j < toks.size() && IsPunct(toks[j], "::")) continue;  // ::iterator etc.
    while (j < toks.size() && (IsPunct(toks[j], "*") || IsPunct(toks[j], "&"))) ++j;
    if (j >= toks.size() || toks[j].kind != Token::Kind::kIdentifier) continue;
    if (j + 1 < toks.size() && IsPunct(toks[j + 1], "(")) continue;  // Function decl.
    names.insert(toks[j].text);
  }
}

void CheckUnorderedIteration(RuleContext& ctx, const FileScan* companion) {
  if (!ctx.RuleEnabled(kUnorderedIteration)) return;
  if (std::none_of(ctx.config().solver_path_dirs.begin(), ctx.config().solver_path_dirs.end(),
                   [&](const std::string& d) { return StartsWith(ctx.scan().path, d); })) {
    return;
  }

  std::set<std::string> unordered_names;
  HarvestUnorderedNames(ctx.scan(), unordered_names);
  if (companion != nullptr) HarvestUnorderedNames(*companion, unordered_names);
  if (unordered_names.empty()) return;

  const std::vector<Token>& toks = ctx.scan().tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered container.
    if (IsIdent(toks[i], "for") && i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
      int depth = 0;
      size_t colon = 0;
      size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) {
          if (--depth == 0) break;
        }
        if (depth == 1 && IsPunct(toks[j], ":") && colon == 0) colon = j;
      }
      if (colon == 0 || j >= toks.size()) continue;
      for (size_t k = colon + 1; k < j; ++k) {
        // `a.b` only matches when b follows the trailing-underscore member
        // convention (companion-header members): a plain `a.b` is some other
        // struct's field that happens to share a harvested name.
        bool member_access =
            k > 0 && (IsPunct(toks[k - 1], ".") || IsPunct(toks[k - 1], "->"));
        if (member_access && !EndsWith(toks[k].text, "_")) continue;
        if (toks[k].kind == Token::Kind::kIdentifier &&
            unordered_names.count(toks[k].text)) {
          ctx.Emit(kUnorderedIteration, Severity::kError, toks[i].line,
                   "range-for over unordered container '" + toks[k].text +
                       "': hash order can leak into solver output; use std::map / a sorted "
                       "vector, or justify with NOLINT");
          break;
        }
      }
      continue;
    }
    // Explicit iterator walks / bulk copies: name.begin() and friends. Only
    // the begin family — `it != c.end()` is the find()-lookup sentinel, which
    // never observes hash order on its own.
    bool member_access = i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
    if (member_access && !EndsWith(toks[i].text, "_")) continue;
    if (toks[i].kind == Token::Kind::kIdentifier &&
        unordered_names.count(toks[i].text) && i + 3 < toks.size() &&
        IsPunct(toks[i + 1], ".") && toks[i + 2].kind == Token::Kind::kIdentifier &&
        IsPunct(toks[i + 3], "(")) {
      const std::string& member = toks[i + 2].text;
      if (member == "begin" || member == "cbegin" || member == "rbegin") {
        ctx.Emit(kUnorderedIteration, Severity::kError, toks[i].line,
                 "iterator over unordered container '" + toks[i].text +
                     "': hash order can leak into solver output");
      }
    }
  }
}

// --- ras-wall-clock ----------------------------------------------------------

void CheckWallClock(RuleContext& ctx) {
  if (!ctx.RuleEnabled(kWallClock)) return;
  if (PathMatchesAny(ctx.scan().path, ctx.config().wall_clock_allowlist)) return;

  const std::vector<Token>& toks = ctx.scan().tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdentifier) continue;
    const std::string& t = toks[i].text;

    // Clock types: nondeterministic in any position.
    if (t == "steady_clock" || t == "system_clock" || t == "high_resolution_clock" ||
        t == "gettimeofday" || t == "clock_gettime" || t == "localtime" || t == "gmtime") {
      ctx.Emit(kWallClock, Severity::kError, toks[i].line,
               "wall-clock source '" + t + "' outside util::MonotonicSeconds(); solver code "
               "must use src/util/monotonic_time (elapsed time) or SimTime (event time)");
      continue;
    }
    if (t == "random_device") {
      ctx.Emit(kWallClock, Severity::kError, toks[i].line,
               "std::random_device is a nondeterministic seed source; thread an explicit "
               "seed through ras::Rng instead");
      continue;
    }

    // C library calls: rand()/srand()/time()/clock(). Only as direct calls;
    // `foo.time()` is someone's method, `MyNs::time()` is not the C library.
    if ((t == "rand" || t == "srand" || t == "time" || t == "clock") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      bool qualified = i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "::"));
      bool std_qualified =
          i >= 2 && IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std");
      if (!qualified || std_qualified) {
        ctx.Emit(kWallClock, Severity::kError, toks[i].line,
                 "'" + t + "()' reads global wall-clock/RNG state; use "
                 "util::MonotonicSeconds() or ras::Rng");
      }
    }
  }
}

// --- ras-unseeded-rng --------------------------------------------------------

void CheckUnseededRng(RuleContext& ctx) {
  if (!ctx.RuleEnabled(kUnseededRng)) return;
  static const std::set<std::string> kEngines = {
      "mt19937",        "mt19937_64",   "minstd_rand",   "minstd_rand0", "ranlux24",
      "ranlux48",       "ranlux24_base", "ranlux48_base", "knuth_b",
      "default_random_engine", "Rng"};

  const std::vector<Token>& toks = ctx.scan().tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdentifier || kEngines.count(toks[i].text) == 0) continue;
    if (i > 0 && IsPunct(toks[i - 1], ".")) continue;  // Member access, not a type.
    if (i + 1 >= toks.size()) continue;
    const std::string& engine = toks[i].text;

    auto flag = [&](int line) {
      ctx.Emit(kUnseededRng, Severity::kError, line,
               "'" + engine + "' constructed without an explicit seed: output depends on "
               "implementation/default state; pass a seed so runs replay bit-identically");
    };

    // Temporary with no arguments: Engine() / Engine{}.
    if (i + 2 < toks.size() && IsPunct(toks[i + 1], "(") && IsPunct(toks[i + 2], ")")) {
      flag(toks[i].line);
      continue;
    }
    if (i + 2 < toks.size() && IsPunct(toks[i + 1], "{") && IsPunct(toks[i + 2], "}")) {
      flag(toks[i].line);
      continue;
    }
    // Declaration without initializer: `Engine name;` or `Engine name{}`.
    // Trailing-underscore names are members (seeded in the constructor's
    // init list, which a token scan cannot see) and are skipped. ras::Rng is
    // also skipped here: it has no default constructor, so a bare declaration
    // can only be a member the compiler forces to be seed-constructed.
    if (engine == "Rng") continue;
    if (toks[i + 1].kind == Token::Kind::kIdentifier && !EndsWith(toks[i + 1].text, "_")) {
      if (i + 2 < toks.size() && IsPunct(toks[i + 2], ";")) {
        flag(toks[i].line);
      } else if (i + 3 < toks.size() && IsPunct(toks[i + 2], "{") && IsPunct(toks[i + 3], "}")) {
        flag(toks[i].line);
      }
    }
  }
}

// --- ras-naked-thread --------------------------------------------------------

void CheckNakedThread(RuleContext& ctx) {
  if (!ctx.RuleEnabled(kNakedThread)) return;
  if (PathMatchesAny(ctx.scan().path, ctx.config().thread_allowlist)) return;

  const std::vector<Token>& toks = ctx.scan().tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdentifier) continue;
    const std::string& t = toks[i].text;
    if (t == "pthread_create") {
      ctx.Emit(kNakedThread, Severity::kError, toks[i].line,
               "raw pthread_create outside src/util/thread_pool; submit work to a ThreadPool");
      continue;
    }
    if (t != "thread" && t != "jthread" && t != "async") continue;
    bool std_qualified = i >= 2 && IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std");
    if (!std_qualified) continue;
    // std::thread::hardware_concurrency() is a capability query, not a spawn.
    if (i + 1 < toks.size() && IsPunct(toks[i + 1], "::")) continue;
    ctx.Emit(kNakedThread, Severity::kError, toks[i].line,
             "std::" + t + " outside src/util/thread_pool; all concurrency rides on "
             "ThreadPool so TSan and the thread-safety annotations cover it");
  }
}

// --- ras-float-money ---------------------------------------------------------

// Identifiers that carry whole-RRU ledger quantities: these must stay
// integral end to end. RRU is double by design almost everywhere in this
// repo (compute_units throughput scalars, fractional demand); the integer
// ledger is specifically the demand splitter's largest-remainder
// apportionment in src/shard/, so bare `units` names are only ledger
// quantities there. Explicit rru_units / integer_rru names are ledger
// quantities wherever they appear.
bool IsIntegerLedgerName(const std::string& name, bool in_ledger_dir) {
  if (Contains(name, "rru_units") || Contains(name, "integer_rru")) return true;
  return in_ledger_dir && (name == "units" || EndsWith(name, "_units"));
}

void CheckFloatMoney(RuleContext& ctx) {
  if (!ctx.RuleEnabled(kFloatMoney)) return;
  const bool in_ledger_dir = StartsWith(ctx.scan().path, "src/shard/");
  const std::vector<Token>& toks = ctx.scan().tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    bool is_float = IsIdent(toks[i], "float");
    bool is_double = IsIdent(toks[i], "double");
    if (!is_float && !is_double) continue;
    size_t j = i + 1;
    while (j < toks.size() && (IsPunct(toks[j], "*") || IsPunct(toks[j], "&"))) ++j;
    if (j >= toks.size() || toks[j].kind != Token::Kind::kIdentifier) continue;
    const std::string& name = toks[j].text;
    if (IsIntegerLedgerName(name, in_ledger_dir)) {
      ctx.Emit(kFloatMoney, Severity::kError, toks[i].line,
               "'" + name + "' is an integer-RRU ledger quantity declared " +
                   (is_float ? "float" : "double") +
                   "; conservation arithmetic must stay int64 (see demand_splitter)");
    } else if (is_float && (Contains(name, "rru") || Contains(name, "capacity"))) {
      ctx.Emit(kFloatMoney, Severity::kError, toks[i].line,
               "'" + name + "' holds RRU/capacity in float; use double (fractional) or "
               "int64 (ledger) — float accumulation drifts");
    }
  }
}

// --- ras-include-hygiene -----------------------------------------------------

void CheckIncludeHygiene(RuleContext& ctx) {
  if (!ctx.RuleEnabled(kIncludeHygiene)) return;
  const FileScan& scan = ctx.scan();
  const std::string& path = scan.path;
  const bool is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  const bool in_repo_tree = StartsWith(path, "src/") || StartsWith(path, "tools/") ||
                            StartsWith(path, "tests/") || StartsWith(path, "bench/");

  if (is_header && in_repo_tree) {
    if (!scan.guard.has_pragma_once &&
        (!scan.guard.has_ifndef || !scan.guard.has_define_match)) {
      ctx.Emit(kIncludeHygiene, Severity::kError, 1,
               "header has no include guard (#ifndef/#define pair or #pragma once)");
    } else if (scan.guard.has_ifndef && scan.guard.ifndef_name != CanonicalGuard(path)) {
      ctx.Emit(kIncludeHygiene, Severity::kWarning, 1,
               "include guard '" + scan.guard.ifndef_name + "' should be '" +
                   CanonicalGuard(path) + "'");
    }
  }

  const std::string dir = DirKey(path);
  for (const Include& inc : scan.includes) {
    if (inc.angled) continue;  // System/third-party headers.
    const bool repo_rooted = StartsWith(inc.path, "src/") || StartsWith(inc.path, "tools/") ||
                             StartsWith(inc.path, "tests/") || StartsWith(inc.path, "bench/");
    if (!repo_rooted) {
      if (in_repo_tree) {
        ctx.Emit(kIncludeHygiene, Severity::kError, inc.line,
                 "quoted include \"" + inc.path +
                     "\" is not repo-root-relative; include as \"src/...\"");
      }
      continue;
    }
    if (StartsWith(path, "src/") &&
        (StartsWith(inc.path, "tests/") || StartsWith(inc.path, "bench/"))) {
      ctx.Emit(kIncludeHygiene, Severity::kError, inc.line,
               "production code must not include \"" + inc.path + "\" from tests/bench");
      continue;
    }
    if (StartsWith(path, "src/")) {
      const std::string target = DirKey(inc.path);
      if (target == dir || target == "src/util") continue;
      auto it = ctx.config().include_edges.find(dir);
      if (it == ctx.config().include_edges.end() || it->second.count(target) == 0) {
        ctx.Emit(kIncludeHygiene, Severity::kError, inc.line,
                 "layering violation: " + dir + " may not include from " + target +
                     " (allowed edges live in tools/raslint/rules.h; extending them is an "
                     "architecture decision, not a lint fix)");
      }
    } else if (StartsWith(path, "tools/")) {
      // tools/ may borrow src/util leaf utilities (ThreadPool for the
      // parallel scan, MonotonicSeconds for wall-time) but nothing above.
      if (!StartsWith(inc.path, "tools/") && !StartsWith(inc.path, "src/util/")) {
        ctx.Emit(kIncludeHygiene, Severity::kError, inc.line,
                 "tools/ may only include tools/ and src/util/, not \"" + inc.path + "\"");
      }
    }
  }
}

// --- ras-metric-name ---------------------------------------------------------

// `ras_<subsystem>_<name>`: lowercase [a-z0-9_] with at least three `_`
// separated nonempty segments, first segment exactly "ras".
bool IsWellFormedMetricBase(const std::string& base) {
  if (!StartsWith(base, "ras_")) return false;
  int segments = 0;
  size_t seg_len = 0;
  for (char c : base) {
    if (c == '_') {
      if (seg_len == 0) return false;  // Leading/doubled underscore.
      ++segments;
      seg_len = 0;
      continue;
    }
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)))) {
      return false;
    }
    ++seg_len;
  }
  if (seg_len == 0) return false;  // Trailing underscore.
  return segments >= 2;            // "ras" + subsystem + name.
}

void CheckMetricName(RuleContext& ctx) {
  if (!ctx.RuleEnabled(kMetricName)) return;
  const std::vector<Token>& toks = ctx.scan().tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdentifier) continue;
    const std::string& method = toks[i].text;
    if (method != "counter" && method != "gauge" && method != "histogram") continue;
    // Member call on a registry: `.counter("..."` / `->counter("..."`.
    bool member_access = i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
    if (!member_access) continue;
    if (!IsPunct(toks[i + 1], "(") || toks[i + 2].kind != Token::Kind::kString) continue;
    // Only complete literals: a `"prefix" + dynamic` name can't be validated.
    if (i + 3 < toks.size() && !IsPunct(toks[i + 3], ",") && !IsPunct(toks[i + 3], ")")) {
      continue;
    }
    const std::string& literal = toks[i + 2].text;
    const int line = toks[i + 2].line;
    // Strip an optional `{label="v",...}` suffix; validate the base name.
    const size_t brace = literal.find('{');
    const std::string base = brace == std::string::npos ? literal : literal.substr(0, brace);
    if (brace != std::string::npos && literal.back() != '}') {
      ctx.Emit(kMetricName, Severity::kError, line,
               "metric name '" + literal + "' has an unterminated label set");
      continue;
    }
    if (!IsWellFormedMetricBase(base)) {
      ctx.Emit(kMetricName, Severity::kError, line,
               "metric name '" + base + "' must match ras_<subsystem>_<name> "
               "(lowercase [a-z0-9_], e.g. ras_solver_solves_total)");
      continue;
    }
    const bool ends_total = EndsWith(base, "_total");
    if (method == "counter" && !ends_total) {
      ctx.Emit(kMetricName, Severity::kError, line,
               "counter '" + base + "' must end in _total (Prometheus counter convention)");
    } else if (method != "counter" && ends_total) {
      ctx.Emit(kMetricName, Severity::kError, line,
               "non-counter '" + base + "' must not end in _total; reserve the suffix for "
               "monotonic counters (time histograms end _seconds)");
    }
  }
}

// --- ras-guarded-access ------------------------------------------------------

// The violations themselves come out of the held-lock walk in symbols.cc;
// this just turns them into NOLINT-filtered diagnostics.
void CheckGuardedAccess(RuleContext& ctx, const FileSemantics& sem) {
  if (!ctx.RuleEnabled(kRuleGuardedAccess)) return;
  for (const GuardedViolation& v : sem.guarded_violations) {
    ctx.Emit(kRuleGuardedAccess, Severity::kError, v.line,
             "field '" + v.field + "' is GUARDED_BY(" + v.guard + ") but '" + v.guard +
                 "' is not held here; take the lock (MutexLock) or annotate the "
                 "function REQUIRES(" + v.guard + ")");
  }
}

}  // namespace

const char* SeverityName(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

const std::vector<RuleMeta>& RuleCatalogue() {
  static const std::vector<RuleMeta> kRules = {
      {"ras-unordered-iteration",
       "Iteration over std::unordered_map/set in solver-path code; hash order can leak "
       "into solver output"},
      {"ras-wall-clock",
       "Wall-clock or nondeterministic seed source outside util::MonotonicSeconds()"},
      {"ras-unseeded-rng", "RNG engine constructed without an explicit seed"},
      {"ras-naked-thread", "std::thread/std::async outside src/util/thread_pool"},
      {"ras-float-money", "float/double on integer-RRU ledger quantities"},
      {"ras-include-hygiene",
       "Include-guard, repo-rooted-include, and directory-layering violations"},
      {"ras-metric-name",
       "Metric literals must match ras_<subsystem>_<name>; counters end in _total"},
      {kRuleGuardedAccess,
       "GUARDED_BY field accessed without holding its mutex (flow-aware)"},
      {kRuleLockOrder,
       "Cycle in the global lock-acquisition-order graph, including call-graph-induced "
       "edges (potential deadlock)"},
      {kRuleBlockingHotPath,
       "Blocking call (fsync/file IO/sleep/std::cout) reachable from a RASLINT-HOT root "
       "or inside a held-lock region"},
      {kRuleStatusDiscard, "Status/Result return value silently discarded"},
  };
  return kRules;
}

std::string CanonicalGuard(const std::string& path) {
  std::string guard = "RAS_";
  for (char c : path) {
    guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                        : '_');
  }
  guard.push_back('_');
  return guard;
}

FileAnalysis AnalyzeFile(const std::string& path, const std::string& content,
                         const std::string& companion_content, const LintConfig& config) {
  FileAnalysis out;
  out.scan = Lex(path, content);
  FileScan companion;
  const FileScan* companion_ptr = nullptr;
  AstFile companion_ast;
  const AstFile* companion_ast_ptr = nullptr;
  if (!companion_content.empty()) {
    companion = Lex(path, companion_content);
    companion_ptr = &companion;
    companion_ast = BuildAst(companion);
    companion_ast_ptr = &companion_ast;
  }
  AstFile ast = BuildAst(out.scan);
  out.semantics = BuildSemantics(out.scan, ast, companion_ptr, companion_ast_ptr);

  RuleContext ctx(out.scan, config, out.result);
  CheckUnorderedIteration(ctx, companion_ptr);
  CheckWallClock(ctx);
  CheckUnseededRng(ctx);
  CheckNakedThread(ctx);
  CheckFloatMoney(ctx);
  CheckIncludeHygiene(ctx);
  CheckMetricName(ctx);
  CheckGuardedAccess(ctx, out.semantics);

  std::stable_sort(
      out.result.diagnostics.begin(), out.result.diagnostics.end(),
      [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
  return out;
}

FileLintResult AnalyzeSource(const std::string& path, const std::string& content,
                             const std::string& companion_content, const LintConfig& config) {
  FileAnalysis analysis = AnalyzeFile(path, content, companion_content, config);
  FileLintResult out = std::move(analysis.result);

  Project project;
  project.AddFile(analysis.scan, analysis.semantics);
  project.Finalize(config, &out.diagnostics, &out.suppressed);

  std::stable_sort(out.diagnostics.begin(), out.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) { return a.line < b.line; });
  return out;
}

}  // namespace raslint
}  // namespace ras
