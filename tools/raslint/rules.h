// raslint rule engine: RAS-specific determinism & concurrency invariants.
//
// Eleven rules (see DESIGN.md "Static analysis" for the full catalogue and
// rationale). Seven are token-level:
//
//   ras-unordered-iteration  iteration over std::unordered_map/set in
//                            solver-path dirs, where hash order can leak into
//                            solver output. Lookup-only containers are fine
//                            and are not flagged.
//   ras-wall-clock           any wall-clock read (std::chrono *_clock,
//                            time()/clock(), std::random_device, rand) outside
//                            the sanctioned util::MonotonicSeconds() helper.
//   ras-unseeded-rng         RNG engines constructed without an explicit seed.
//   ras-naked-thread         std::thread / std::async outside
//                            src/util/thread_pool.
//   ras-float-money          float/double creeping into integer-RRU ledger
//                            identifiers (and `float` on any rru/capacity
//                            value).
//   ras-include-hygiene      missing/misnamed include guards, non-repo-rooted
//                            quoted includes, and cross-directory includes
//                            outside the allowed layering edges.
//   ras-metric-name          literal metric names passed to the src/obs
//                            registry (`.counter("...")` / `.gauge(` /
//                            `.histogram(`) must follow the exposition
//                            convention: `ras_<subsystem>_<name>` in
//                            lowercase [a-z0-9_] (an optional `{k="v"}` label
//                            suffix is stripped first), counters end in
//                            `_total`, gauges/histograms do not. Dynamic
//                            (non-literal) names are not checked.
//
// Four are flow-aware, built on the scope/symbol/call-graph layers (ast.h,
// symbols.h, callgraph.h):
//
//   ras-guarded-access       GUARDED_BY(mu) field touched in a scope that
//                            does not hold mu (covers GCC builds where the
//                            Clang thread-safety analysis never runs).
//   ras-lock-order           acquisition-order cycles across the project's
//                            lock graph, including edges induced through the
//                            call graph — the deadlock detector.
//   ras-blocking-in-hot-path blocking sinks (fsync, file IO, sleep,
//                            std::cout) reachable from RASLINT-HOT roots or
//                            inside held-lock regions.
//   ras-status-discard       Status/Result-returning call whose result is
//                            dropped at statement position.
//
// Suppression: `// NOLINT(ras-rule)` on the offending line, or
// `// NOLINTNEXTLINE(ras-rule)` on the line before; bare NOLINT suppresses
// every rule on its line. Suppressed diagnostics are counted, not dropped
// silently.

#ifndef RAS_TOOLS_RASLINT_RULES_H_
#define RAS_TOOLS_RASLINT_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/raslint/lexer.h"
#include "tools/raslint/symbols.h"

namespace ras {
namespace raslint {

enum class Severity { kWarning, kError };

const char* SeverityName(Severity s);

// Identifiers of the semantic rules, shared between rules.cc (guarded-access,
// catalogue) and callgraph.cc (the project rules).
inline constexpr char kRuleGuardedAccess[] = "ras-guarded-access";
inline constexpr char kRuleLockOrder[] = "ras-lock-order";
inline constexpr char kRuleBlockingHotPath[] = "ras-blocking-in-hot-path";
inline constexpr char kRuleStatusDiscard[] = "ras-status-discard";

// One entry per rule, id + one-line description; drives the SARIF
// tool.driver.rules array and the README table.
struct RuleMeta {
  const char* id;
  const char* summary;
};
const std::vector<RuleMeta>& RuleCatalogue();

struct Diagnostic {
  std::string rule;
  Severity severity;
  std::string file;
  int line;
  std::string message;
};

struct LintConfig {
  // Rules to run; empty = all.
  std::set<std::string> enabled_rules;
  // Directory prefixes where iteration order is solver-visible.
  std::vector<std::string> solver_path_dirs = {"src/solver/", "src/core/", "src/shard/",
                                               "src/broker/", "src/twine/", "src/journal/"};
  // Path substrings allowed to read the wall clock / spawn raw threads.
  std::vector<std::string> wall_clock_allowlist = {"src/util/monotonic_time."};
  std::vector<std::string> thread_allowlist = {"src/util/thread_pool."};
  // Allowed cross-directory include edges for src/<dir> files. Every dir may
  // also include itself and src/util implicitly.
  std::map<std::string, std::set<std::string>> include_edges = {
      {"src/topology", {}},
      {"src/obs", {}},
      {"src/solver", {"src/obs"}},
      {"src/fleet", {"src/topology"}},
      {"src/broker", {"src/obs", "src/topology"}},
      {"src/faults", {"src/core"}},
      {"src/health", {"src/broker", "src/topology"}},
      {"src/twine", {"src/broker", "src/topology"}},
      {"src/shard", {"src/core", "src/obs", "src/topology"}},
      {"src/core",
       {"src/broker", "src/faults", "src/fleet", "src/obs", "src/shard", "src/sim",
        "src/solver", "src/topology", "src/twine"}},
      {"src/journal", {"src/broker", "src/core", "src/faults", "src/obs", "src/topology"}},
      {"src/sim",
       {"src/core", "src/faults", "src/fleet", "src/health", "src/journal", "src/obs",
        "src/twine"}},
  };
  // Extra hot-path roots for ras-blocking-in-hot-path, by qualified or bare
  // name; the usual mechanism is a `// RASLINT-HOT` comment on the
  // definition.
  std::vector<std::string> hot_root_functions;
  // Driver file-scan parallelism; 0 = one worker per hardware thread.
  int scan_threads = 0;
};

struct FileLintResult {
  std::vector<Diagnostic> diagnostics;
  int suppressed = 0;
};

// Per-file analysis: the token rules plus ras-guarded-access, with the lexer
// scan and semantic tables kept so the driver can feed a cross-TU Project.
struct FileAnalysis {
  FileScan scan;
  FileSemantics semantics;
  FileLintResult result;
};

// Runs the per-file rules over `content`. `companion_content` is the file's
// same-stem header (empty if none): member containers and GUARDED_BY fields
// declared there are in scope when linting the .cc.
FileAnalysis AnalyzeFile(const std::string& path, const std::string& content,
                         const std::string& companion_content = std::string(),
                         const LintConfig& config = LintConfig());

// AnalyzeFile plus a single-file project pass (lock-order, blocking,
// status-discard confined to this TU). The driver instead runs one Project
// over every scanned file; this entry point serves tests and fixtures.
FileLintResult AnalyzeSource(const std::string& path, const std::string& content,
                             const std::string& companion_content = std::string(),
                             const LintConfig& config = LintConfig());

// The canonical include guard for a repo-relative header path:
// "src/util/mutex.h" -> "RAS_SRC_UTIL_MUTEX_H_".
std::string CanonicalGuard(const std::string& path);

}  // namespace raslint
}  // namespace ras

#endif  // RAS_TOOLS_RASLINT_RULES_H_
