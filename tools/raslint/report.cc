#include "tools/raslint/report.h"

#include <cstdio>

namespace ras {
namespace raslint {
namespace {

void JsonEscape(const std::string& s, std::ostream& os) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

int RunSummary::errors() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int RunSummary::warnings() const {
  return static_cast<int>(diagnostics.size()) - errors();
}

void WriteText(const RunSummary& summary, std::ostream& os) {
  for (const Diagnostic& d : summary.diagnostics) {
    os << d.file << ":" << d.line << ": " << SeverityName(d.severity) << ": [" << d.rule
       << "] " << d.message << "\n";
  }
  os << "raslint: " << summary.files_scanned << " files scanned, " << summary.errors()
     << " errors, " << summary.warnings() << " warnings, " << summary.suppressed
     << " suppressed";
  if (summary.scan_seconds > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", summary.scan_seconds);
    os << " (" << buf << "s)";
  }
  os << "\n";
}

void WriteJson(const RunSummary& summary, std::ostream& os) {
  os << "{\n"
     << "  \"tool\": \"raslint\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"files_scanned\": " << summary.files_scanned << ",\n"
     << "  \"errors\": " << summary.errors() << ",\n"
     << "  \"warnings\": " << summary.warnings() << ",\n"
     << "  \"suppressed\": " << summary.suppressed << ",\n"
     << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : summary.diagnostics) {
    os << (first ? "\n" : ",\n") << "    {\"file\": \"";
    JsonEscape(d.file, os);
    os << "\", \"line\": " << d.line << ", \"rule\": \"";
    JsonEscape(d.rule, os);
    os << "\", \"severity\": \"" << SeverityName(d.severity) << "\", \"message\": \"";
    JsonEscape(d.message, os);
    os << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

void WriteSarif(const RunSummary& summary, std::ostream& os) {
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"raslint\",\n"
     << "          \"informationUri\": \"https://github.com/ras/ras\",\n"
     << "          \"rules\": [";
  const std::vector<RuleMeta>& rules = RuleCatalogue();
  for (size_t i = 0; i < rules.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "            {\"id\": \"" << rules[i].id
       << "\", \"shortDescription\": {\"text\": \"";
    JsonEscape(rules[i].summary, os);
    os << "\"}}";
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  bool first = true;
  for (const Diagnostic& d : summary.diagnostics) {
    // Rule index into the catalogue; unknown rules (e.g. ras-driver IO
    // errors) get no ruleIndex.
    int rule_index = -1;
    for (size_t i = 0; i < rules.size(); ++i) {
      if (d.rule == rules[i].id) {
        rule_index = static_cast<int>(i);
        break;
      }
    }
    os << (first ? "\n" : ",\n") << "        {\"ruleId\": \"";
    JsonEscape(d.rule, os);
    os << "\"";
    if (rule_index >= 0) os << ", \"ruleIndex\": " << rule_index;
    os << ", \"level\": \"" << (d.severity == Severity::kError ? "error" : "warning")
       << "\", \"message\": {\"text\": \"";
    JsonEscape(d.message, os);
    os << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \"";
    JsonEscape(d.file, os);
    os << "\"}, \"region\": {\"startLine\": " << (d.line < 1 ? 1 : d.line) << "}}}]}";
    first = false;
  }
  os << (first ? "" : "\n      ") << "]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
}

}  // namespace raslint
}  // namespace ras
