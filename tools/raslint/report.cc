#include "tools/raslint/report.h"

#include <cstdio>

namespace ras {
namespace raslint {
namespace {

void JsonEscape(const std::string& s, std::ostream& os) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

int RunSummary::errors() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int RunSummary::warnings() const {
  return static_cast<int>(diagnostics.size()) - errors();
}

void WriteText(const RunSummary& summary, std::ostream& os) {
  for (const Diagnostic& d : summary.diagnostics) {
    os << d.file << ":" << d.line << ": " << SeverityName(d.severity) << ": [" << d.rule
       << "] " << d.message << "\n";
  }
  os << "raslint: " << summary.files_scanned << " files scanned, " << summary.errors()
     << " errors, " << summary.warnings() << " warnings, " << summary.suppressed
     << " suppressed\n";
}

void WriteJson(const RunSummary& summary, std::ostream& os) {
  os << "{\n"
     << "  \"tool\": \"raslint\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"files_scanned\": " << summary.files_scanned << ",\n"
     << "  \"errors\": " << summary.errors() << ",\n"
     << "  \"warnings\": " << summary.warnings() << ",\n"
     << "  \"suppressed\": " << summary.suppressed << ",\n"
     << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : summary.diagnostics) {
    os << (first ? "\n" : ",\n") << "    {\"file\": \"";
    JsonEscape(d.file, os);
    os << "\", \"line\": " << d.line << ", \"rule\": \"";
    JsonEscape(d.rule, os);
    os << "\", \"severity\": \"" << SeverityName(d.severity) << "\", \"message\": \"";
    JsonEscape(d.message, os);
    os << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

}  // namespace raslint
}  // namespace ras
