// raslint's project layer: a cross-TU call graph over every scanned file and
// the three flow-aware rules that need it.
//
//   ras-lock-order          Directed graph of canonical lock names with an
//                           edge A -> B for every site that acquires B while
//                           holding A — directly, or by calling a function
//                           whose acquired-lock closure contains B. Any edge
//                           inside a strongly connected component is a
//                           potential deadlock and is reported at its site.
//   ras-blocking-in-hot-path  Blocks(F) fixpoint: F blocks if it contains a
//                           blocking sink or calls a function that blocks.
//                           Reported at every sink reachable from a
//                           RASLINT-HOT root and at every sink or
//                           blocking-call site inside a held-lock region.
//   ras-status-discard      Statement-position call whose result is dropped,
//                           resolving (cross-TU) to a Status/Result-returning
//                           function. `(void)` casts and `return` are uses.
//
// Call resolution is name-based: explicit `Class::f` qualifiers first, then
// the caller's own class, then a bare name when it is unambiguous across the
// project (for ras-status-discard, also when every candidate agrees on the
// return type). Unresolved calls contribute nothing — the analysis
// under-approximates rather than guessing.

#ifndef RAS_TOOLS_RASLINT_CALLGRAPH_H_
#define RAS_TOOLS_RASLINT_CALLGRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/raslint/rules.h"
#include "tools/raslint/symbols.h"

namespace ras {
namespace raslint {

class Project {
 public:
  // Order matters only for deterministic output: add files in sorted order.
  void AddFile(const FileScan& scan, const FileSemantics& sem);

  // Runs the three project rules. Appends NOLINT-filtered diagnostics to
  // `out` (caller sorts/merges) and bumps `suppressed` for filtered ones.
  void Finalize(const LintConfig& config, std::vector<Diagnostic>* out,
                int* suppressed) const;

 private:
  struct FileInfo {
    std::string path;
    std::map<int, std::set<std::string>> nolint;
  };
  struct Fn {
    FunctionSem sem;
    int file;
  };

  int Resolve(const Fn& caller, const CallSite& call) const;
  bool ReturnsStatus(const Fn& caller, const CallSite& call) const;

  std::vector<FileInfo> files_;
  std::vector<Fn> fns_;  // Definitions, in file order.
  std::map<std::string, std::vector<int>> by_qualified_;
  std::map<std::string, std::vector<int>> by_bare_;
  // Return-type votes from definitions AND declarations.
  std::map<std::string, std::set<bool>> status_by_qualified_;
  std::map<std::string, std::set<bool>> status_by_bare_;
};

}  // namespace raslint
}  // namespace ras

#endif  // RAS_TOOLS_RASLINT_CALLGRAPH_H_
