#include "tools/raslint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/util/monotonic_time.h"
#include "src/util/thread_pool.h"
#include "tools/raslint/callgraph.h"

namespace ras {
namespace raslint {
namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool SkipDirectory(const std::string& name) {
  return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

// Repo-relative path with forward slashes.
std::string Relative(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  return (ec ? p : rel).generic_string();
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// One file's outcome; written by exactly one worker, merged in file order.
struct Slot {
  bool ok = false;
  FileAnalysis analysis;
};

void SortDiagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  });
}

// Merges per-file slots into a summary and runs the cross-TU Project pass.
RunSummary MergeSlots(const std::vector<std::string>& files, std::vector<Slot>& slots,
                      const LintConfig& config) {
  RunSummary summary;
  Project project;
  for (size_t i = 0; i < files.size(); ++i) {
    if (!slots[i].ok) {
      summary.diagnostics.push_back(
          Diagnostic{"ras-driver", Severity::kError, files[i], 0, "cannot read file"});
      continue;
    }
    ++summary.files_scanned;
    FileLintResult& result = slots[i].analysis.result;
    summary.suppressed += result.suppressed;
    summary.diagnostics.insert(summary.diagnostics.end(), result.diagnostics.begin(),
                               result.diagnostics.end());
    project.AddFile(slots[i].analysis.scan, slots[i].analysis.semantics);
  }
  project.Finalize(config, &summary.diagnostics, &summary.suppressed);
  SortDiagnostics(summary.diagnostics);
  return summary;
}

}  // namespace

std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& paths) {
  const fs::path root_path(root);
  std::vector<std::string> files;
  for (const std::string& raw : paths) {
    fs::path p = fs::path(raw).is_absolute() ? fs::path(raw) : root_path / raw;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
      fs::recursive_directory_iterator end;
      for (; !ec && it != end; it.increment(ec)) {
        if (it->is_directory() && SkipDirectory(it->path().filename().string())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.push_back(Relative(it->path(), root_path));
        }
      }
    } else if (fs::exists(p, ec)) {
      files.push_back(Relative(p, root_path));
    } else {
      files.push_back(raw);  // Surfaces as an unreadable-file diagnostic.
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

RunSummary LintFiles(const std::string& root, const std::vector<std::string>& files,
                     const LintConfig& config) {
  const double start = util::MonotonicSeconds();
  const fs::path root_path(root);
  std::vector<Slot> slots(files.size());

  auto lint_one = [&](size_t i) {
    std::string content;
    if (!ReadFile(root_path / files[i], &content)) return;

    // A .cc sees its same-stem header's members (unordered containers,
    // GUARDED_BY fields, REQUIRES declarations).
    std::string companion;
    fs::path p = root_path / files[i];
    if (p.extension() == ".cc" || p.extension() == ".cpp") {
      fs::path header = p;
      header.replace_extension(".h");
      std::error_code ec;
      if (fs::exists(header, ec)) ReadFile(header, &companion);
    }
    slots[i].analysis = AnalyzeFile(files[i], content, companion, config);
    slots[i].ok = true;
  };

  int threads = config.scan_threads;
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads <= 1 || files.size() < 2) {
    for (size_t i = 0; i < files.size(); ++i) lint_one(i);
  } else {
    // Each task owns exactly one slot, so the fan-out needs no locking; the
    // merge below walks slots in file order, keeping output deterministic.
    ThreadPool pool(std::min<int>(threads, static_cast<int>(files.size())));
    for (size_t i = 0; i < files.size(); ++i) {
      pool.Submit([&lint_one, i] { lint_one(i); });
    }
    pool.Wait();
  }

  RunSummary summary = MergeSlots(files, slots, config);
  summary.scan_seconds = util::MonotonicSeconds() - start;
  return summary;
}

RunSummary LintSources(const std::vector<std::pair<std::string, std::string>>& sources,
                       const LintConfig& config) {
  std::vector<std::string> files;
  files.reserve(sources.size());
  for (const auto& [path, content] : sources) files.push_back(path);

  std::vector<Slot> slots(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    const std::string& path = sources[i].first;
    std::string companion;
    size_t dot = path.rfind('.');
    if (dot != std::string::npos &&
        (path.compare(dot, std::string::npos, ".cc") == 0 ||
         path.compare(dot, std::string::npos, ".cpp") == 0)) {
      const std::string header = path.substr(0, dot) + ".h";
      for (const auto& [other_path, other_content] : sources) {
        if (other_path == header) companion = other_content;
      }
    }
    slots[i].analysis = AnalyzeFile(path, sources[i].second, companion, config);
    slots[i].ok = true;
  }
  return MergeSlots(files, slots, config);
}

}  // namespace raslint
}  // namespace ras
