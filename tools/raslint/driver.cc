#include "tools/raslint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ras {
namespace raslint {
namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool SkipDirectory(const std::string& name) {
  return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

// Repo-relative path with forward slashes.
std::string Relative(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  return (ec ? p : rel).generic_string();
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& paths) {
  const fs::path root_path(root);
  std::vector<std::string> files;
  for (const std::string& raw : paths) {
    fs::path p = fs::path(raw).is_absolute() ? fs::path(raw) : root_path / raw;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
      fs::recursive_directory_iterator end;
      for (; !ec && it != end; it.increment(ec)) {
        if (it->is_directory() && SkipDirectory(it->path().filename().string())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.push_back(Relative(it->path(), root_path));
        }
      }
    } else if (fs::exists(p, ec)) {
      files.push_back(Relative(p, root_path));
    } else {
      files.push_back(raw);  // Surfaces as an unreadable-file diagnostic.
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

RunSummary LintFiles(const std::string& root, const std::vector<std::string>& files,
                     const LintConfig& config) {
  const fs::path root_path(root);
  RunSummary summary;
  for (const std::string& file : files) {
    std::string content;
    if (!ReadFile(root_path / file, &content)) {
      summary.diagnostics.push_back(Diagnostic{"ras-driver", Severity::kError, file, 0,
                                               "cannot read file"});
      continue;
    }
    ++summary.files_scanned;

    // A .cc sees its same-stem header's members (e.g. iterating a container
    // the header declares unordered).
    std::string companion;
    fs::path p = root_path / file;
    if (p.extension() == ".cc" || p.extension() == ".cpp") {
      fs::path header = p;
      header.replace_extension(".h");
      std::error_code ec;
      if (fs::exists(header, ec)) {
        ReadFile(header, &companion);
      }
    }

    FileLintResult result = AnalyzeSource(file, content, companion, config);
    summary.suppressed += result.suppressed;
    summary.diagnostics.insert(summary.diagnostics.end(), result.diagnostics.begin(),
                               result.diagnostics.end());
  }
  return summary;
}

}  // namespace raslint
}  // namespace ras
