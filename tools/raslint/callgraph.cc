#include "tools/raslint/callgraph.h"

#include <algorithm>
#include <tuple>

namespace ras {
namespace raslint {
namespace {

// Kosaraju SCC over an integer adjacency list. Returns component ids.
std::vector<int> StronglyConnected(int n, const std::vector<std::vector<int>>& adj) {
  std::vector<std::vector<int>> radj(n);
  for (int u = 0; u < n; ++u) {
    for (int v : adj[u]) radj[v].push_back(u);
  }
  std::vector<int> order;
  std::vector<char> seen(n, 0);
  for (int s = 0; s < n; ++s) {
    if (seen[s]) continue;
    // Iterative DFS, post-order.
    std::vector<std::pair<int, size_t>> stack{{s, 0}};
    seen[s] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        int v = adj[u][next++];
        if (!seen[v]) {
          seen[v] = 1;
          stack.push_back({v, 0});
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }
  std::vector<int> comp(n, -1);
  int c = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (comp[*it] >= 0) continue;
    std::vector<int> stack{*it};
    comp[*it] = c;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int v : radj[u]) {
        if (comp[v] < 0) {
          comp[v] = c;
          stack.push_back(v);
        }
      }
    }
    ++c;
  }
  return comp;
}

std::string JoinLocks(const std::vector<std::string>& locks) {
  std::string out;
  for (const std::string& l : locks) {
    if (!out.empty()) out += ", ";
    out += l;
  }
  return out;
}

}  // namespace

void Project::AddFile(const FileScan& scan, const FileSemantics& sem) {
  const int file = static_cast<int>(files_.size());
  files_.push_back(FileInfo{scan.path, scan.nolint});
  for (const FunctionSem& f : sem.functions) {
    const int idx = static_cast<int>(fns_.size());
    fns_.push_back(Fn{f, file});
    by_qualified_[f.sig.qualified].push_back(idx);
    by_bare_[f.sig.name].push_back(idx);
    status_by_qualified_[f.sig.qualified].insert(f.sig.returns_status);
    status_by_bare_[f.sig.name].insert(f.sig.returns_status);
  }
  for (const FunctionSig& d : sem.declarations) {
    status_by_qualified_[d.qualified].insert(d.returns_status);
    status_by_bare_[d.name].insert(d.returns_status);
  }
}

int Project::Resolve(const Fn& caller, const CallSite& call) const {
  if (!call.qualifier.empty() && call.qualifier != "std") {
    auto it = by_qualified_.find(call.qualifier + "::" + call.callee);
    if (it != by_qualified_.end() && it->second.size() == 1) return it->second[0];
  }
  if (!caller.sem.sig.class_name.empty()) {
    auto it = by_qualified_.find(caller.sem.sig.class_name + "::" + call.callee);
    if (it != by_qualified_.end() && it->second.size() == 1) return it->second[0];
  }
  auto it = by_bare_.find(call.callee);
  if (it != by_bare_.end() && it->second.size() == 1) return it->second[0];
  return -1;
}

bool Project::ReturnsStatus(const Fn& caller, const CallSite& call) const {
  auto agree = [](const std::map<std::string, std::set<bool>>& m,
                  const std::string& key, bool* result) {
    auto it = m.find(key);
    if (it == m.end() || it->second.size() != 1) return false;
    *result = *it->second.begin();
    return true;
  };
  bool status = false;
  if (!call.qualifier.empty() && call.qualifier != "std" &&
      agree(status_by_qualified_, call.qualifier + "::" + call.callee, &status)) {
    return status;
  }
  if (!caller.sem.sig.class_name.empty() &&
      agree(status_by_qualified_, caller.sem.sig.class_name + "::" + call.callee,
            &status)) {
    return status;
  }
  if (agree(status_by_bare_, call.callee, &status)) return status;
  return false;
}

void Project::Finalize(const LintConfig& config, std::vector<Diagnostic>* out,
                       int* suppressed) const {
  auto enabled = [&](const char* rule) {
    return config.enabled_rules.empty() || config.enabled_rules.count(rule) > 0;
  };
  std::set<std::tuple<std::string, std::string, int>> emitted;
  auto emit = [&](const char* rule, int file, int line, std::string message) {
    if (!emitted.insert({rule, files_[file].path, line}).second) return;
    auto it = files_[file].nolint.find(line);
    if (it != files_[file].nolint.end() &&
        (it->second.count("*") > 0 || it->second.count(rule) > 0)) {
      ++*suppressed;
      return;
    }
    out->push_back(
        Diagnostic{rule, Severity::kError, files_[file].path, line, std::move(message)});
  };

  const int n = static_cast<int>(fns_.size());

  // Resolved call targets, computed once.
  std::vector<std::vector<int>> callee(n);
  for (int f = 0; f < n; ++f) {
    callee[f].reserve(fns_[f].sem.calls.size());
    for (const CallSite& c : fns_[f].sem.calls) {
      callee[f].push_back(Resolve(fns_[f], c));
    }
  }

  // --- ras-lock-order --------------------------------------------------------
  if (enabled(kRuleLockOrder)) {
    // Acquired-lock closure per function (locks taken here or in callees).
    std::vector<std::set<std::string>> acq(n);
    for (int f = 0; f < n; ++f) {
      for (const AcquireSite& a : fns_[f].sem.acquires) acq[f].insert(a.lock);
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (int f = 0; f < n; ++f) {
        for (int r : callee[f]) {
          if (r < 0) continue;
          for (const std::string& l : acq[r]) {
            if (acq[f].insert(l).second) changed = true;
          }
        }
      }
    }

    struct EdgeSites {
      std::vector<std::pair<int, int>> sites;  // (file, line)
    };
    std::map<std::pair<std::string, std::string>, EdgeSites> edges;
    for (int f = 0; f < n; ++f) {
      for (const AcquireSite& a : fns_[f].sem.acquires) {
        for (const std::string& h : a.held_before) {
          if (h == a.lock) continue;
          edges[{h, a.lock}].sites.push_back({fns_[f].file, a.line});
        }
      }
      for (size_t ci = 0; ci < fns_[f].sem.calls.size(); ++ci) {
        const CallSite& c = fns_[f].sem.calls[ci];
        int r = callee[f][ci];
        if (r < 0 || c.held.empty()) continue;
        for (const std::string& l : acq[r]) {
          for (const std::string& h : c.held) {
            if (h == l) continue;
            edges[{h, l}].sites.push_back({fns_[f].file, c.line});
          }
        }
      }
    }

    std::map<std::string, int> lock_id;
    for (const auto& [edge, sites] : edges) {
      lock_id.emplace(edge.first, static_cast<int>(lock_id.size()));
      lock_id.emplace(edge.second, static_cast<int>(lock_id.size()));
    }
    std::vector<std::vector<int>> adj(lock_id.size());
    for (const auto& [edge, sites] : edges) {
      adj[lock_id[edge.first]].push_back(lock_id[edge.second]);
    }
    std::vector<int> comp = StronglyConnected(static_cast<int>(lock_id.size()), adj);
    for (const auto& [edge, sites] : edges) {
      const bool self_cycle = edge.first == edge.second;
      if (!self_cycle && comp[lock_id.at(edge.first)] != comp[lock_id.at(edge.second)]) {
        continue;
      }
      for (const auto& [file, line] : sites.sites) {
        emit(kRuleLockOrder, file, line,
             self_cycle
                 ? "lock '" + edge.first + "' acquired while already held (self-deadlock)"
                 : "lock-order inversion: '" + edge.second + "' acquired while holding '" +
                       edge.first +
                       "', but the reverse order also occurs (acquisition-order cycle; "
                       "pick one global order)");
      }
    }
  }

  // --- ras-blocking-in-hot-path ----------------------------------------------
  if (enabled(kRuleBlockingHotPath)) {
    std::vector<char> blocks(n, 0);
    std::vector<std::string> witness(n);
    for (int f = 0; f < n; ++f) {
      if (!fns_[f].sem.sinks.empty()) {
        blocks[f] = 1;
        witness[f] = fns_[f].sem.sinks.front().what;
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (int f = 0; f < n; ++f) {
        if (blocks[f]) continue;
        for (int r : callee[f]) {
          if (r >= 0 && blocks[r]) {
            blocks[f] = 1;
            witness[f] = fns_[r].sem.sig.qualified + " -> " + witness[r];
            changed = true;
            break;
          }
        }
      }
    }

    // Hot closure: BFS from RASLINT-HOT roots (plus configured extras).
    std::vector<std::string> hot_root(n);
    std::vector<int> queue;
    for (int f = 0; f < n; ++f) {
      const FunctionSig& sig = fns_[f].sem.sig;
      bool is_root = sig.hot;
      for (const std::string& name : config.hot_root_functions) {
        if (name == sig.qualified || name == sig.name) is_root = true;
      }
      if (is_root) {
        hot_root[f] = sig.qualified;
        queue.push_back(f);
      }
    }
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      int f = queue[qi];
      for (int r : callee[f]) {
        if (r >= 0 && hot_root[r].empty()) {
          hot_root[r] = hot_root[f];
          queue.push_back(r);
        }
      }
    }

    for (int f = 0; f < n; ++f) {
      for (const SinkSite& s : fns_[f].sem.sinks) {
        if (!hot_root[f].empty()) {
          emit(kRuleBlockingHotPath, fns_[f].file, s.line,
               "blocking call '" + s.what + "' on a hot path (reachable from hot root '" +
                   hot_root[f] + "'); hoist the IO out of the hot loop");
        }
        if (!s.held.empty()) {
          emit(kRuleBlockingHotPath, fns_[f].file, s.line,
               "blocking call '" + s.what + "' while holding lock(s) " +
                   JoinLocks(s.held) + "; release the lock before doing IO");
        }
      }
      for (size_t ci = 0; ci < fns_[f].sem.calls.size(); ++ci) {
        const CallSite& c = fns_[f].sem.calls[ci];
        int r = callee[f][ci];
        if (r < 0 || c.held.empty() || !blocks[r]) continue;
        emit(kRuleBlockingHotPath, fns_[f].file, c.line,
             "call to '" + fns_[r].sem.sig.qualified + "' while holding lock(s) " +
                 JoinLocks(c.held) + " reaches blocking '" + witness[r] + "'");
      }
    }
  }

  // --- ras-status-discard ----------------------------------------------------
  if (enabled(kRuleStatusDiscard)) {
    for (int f = 0; f < n; ++f) {
      for (const CallSite& c : fns_[f].sem.calls) {
        if (!c.discarded) continue;
        if (!ReturnsStatus(fns_[f], c)) continue;
        emit(kRuleStatusDiscard, fns_[f].file, c.line,
             "result of '" + c.callee +
                 "' (Status/Result) is silently discarded; handle it, or cast to (void) "
                 "with a comment saying why failure is acceptable");
      }
    }
  }
}

}  // namespace raslint
}  // namespace ras
