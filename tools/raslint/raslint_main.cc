// raslint CLI.
//
//   raslint [--root=DIR] [--json=FILE] [--sarif=FILE] [--threads=N]
//           [--rule=ras-x ...] PATH...
//
// PATHs are files or directories, relative to --root (default: the current
// directory). --threads=0 (default) scans with one worker per hardware
// thread; --threads=1 forces the serial baseline. Exit code 0 = no errors
// (warnings allowed), 1 = errors found, 2 = usage problem. CI runs
// `raslint --root=. --json=raslint.json --sarif=raslint.sarif src tools
// tests` via the `raslint_check` CMake target.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/raslint/driver.h"
#include "tools/raslint/report.h"
#include "tools/raslint/rules.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::string sarif_path;
  ras::raslint::LintConfig config;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.scan_threads = std::atoi(arg.substr(10).c_str());
    } else if (arg.rfind("--rule=", 0) == 0) {
      config.enabled_rules.insert(arg.substr(7));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: raslint [--root=DIR] [--json=FILE] [--sarif=FILE] "
                   "[--threads=N] [--rule=ras-x ...] PATH...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "raslint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "raslint: no paths given (try: raslint --root=. src tools tests)\n";
    return 2;
  }

  std::vector<std::string> files = ras::raslint::CollectFiles(root, paths);
  ras::raslint::RunSummary summary = ras::raslint::LintFiles(root, files, config);
  ras::raslint::WriteText(summary, std::cout);

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "raslint: cannot write " << json_path << "\n";
      return 2;
    }
    ras::raslint::WriteJson(summary, json);
  }
  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path);
    if (!sarif) {
      std::cerr << "raslint: cannot write " << sarif_path << "\n";
      return 2;
    }
    ras::raslint::WriteSarif(summary, sarif);
  }
  return summary.errors() > 0 ? 1 : 0;
}
