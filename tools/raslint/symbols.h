// raslint's symbol layer: per-function lock state, call/acquire/sink sites,
// and GUARDED_BY field tables.
//
// For every function definition in a file, BuildSemantics performs a linear
// walk over the body tokens tracking which mutexes are held:
//
//   - `MutexLock lock(&mu);` holds `mu` until the enclosing scope closes
//     (RAII — registered against the brace frame that owns it);
//   - `mu.Lock()` / `mu.Unlock()` toggle manually. When a scope that saw a
//     manual toggle exits via return/break/continue/throw, the held set is
//     restored to the scope-entry snapshot on `}` — this models the common
//     `if (done) { mu_.Unlock(); return; }` early-exit shape without real
//     flow analysis;
//   - lambda bodies reset the held set (they usually run later, on another
//     thread) and restore it on exit; their calls and sinks are attributed
//     to the enclosing function (lambdas are inlined into the call graph);
//   - REQUIRES(...) annotations (on the definition or its declaration in the
//     companion header) seed the held set.
//
// Lock names are canonicalized so they compare across functions:
//   `sh.mu`   -> "<qualified_fn>/sh.mu"   (function-local object member)
//   `mu_`     -> "<Class>::mu_"           (class member)
//   local     -> "<qualified_fn>/name"    (Mutex declared in the body)
//   otherwise -> bare text                (global)
//
// The walk also records guarded-access violations (GUARDED_BY field touched
// without its mutex in the held set) and blocking sinks (fsync, file IO,
// sleep, std::cout, ...) with the locks held at each.

#ifndef RAS_TOOLS_RASLINT_SYMBOLS_H_
#define RAS_TOOLS_RASLINT_SYMBOLS_H_

#include <set>
#include <string>
#include <vector>

#include "tools/raslint/ast.h"
#include "tools/raslint/lexer.h"

namespace ras {
namespace raslint {

// `field` is declared GUARDED_BY(`guard`) at `line`. Scoping metadata keeps
// name collisions from firing: a field of a function-local struct only
// matches `instance.field` accesses in that function; a class member only
// matches bare accesses from that class's own methods.
struct GuardedField {
  std::string field;
  std::string guard;
  int line = 0;
  int decl_tok = -1;         // Token index of the field identifier.
  int owner_fn = -1;         // Function owning the local struct, -1 = none.
  std::string owner_class;   // Innermost class scope the field lives in.
  std::set<std::string> instances;  // Known variables of the local struct.
};

struct CallSite {
  std::string callee;     // Bare name (last identifier of the chain).
  std::string qualifier;  // "Class" for an explicit Class::callee, else "".
  bool member = false;    // obj.callee / obj->callee.
  int line = 0;
  std::vector<std::string> held;  // Canonical lock names held at the call.
  bool discarded = false;         // Statement-position call, result unused.
};

struct AcquireSite {
  std::string lock;                      // Canonical name.
  std::vector<std::string> held_before;  // Canonical names held when acquired.
  int line = 0;
};

struct SinkSite {
  std::string what;               // "fsync", "std::cout", ...
  int line = 0;
  std::vector<std::string> held;  // Canonical lock names held at the sink.
};

struct GuardedViolation {
  std::string field;
  std::string guard;  // The raw lock text that should have been held.
  int line = 0;
};

struct FunctionSem {
  FunctionSig sig;
  std::vector<CallSite> calls;
  std::vector<AcquireSite> acquires;
  std::vector<SinkSite> sinks;
};

struct FileSemantics {
  std::string path;
  std::vector<GuardedField> guarded;     // From this file and its companion.
  std::vector<FunctionSem> functions;    // One per definition.
  std::vector<FunctionSig> declarations; // Body-less signatures (headers).
  std::vector<GuardedViolation> guarded_violations;
};

// `companion`/`companion_ast` are the same-stem header of a .cc (null if
// none): it contributes GUARDED_BY fields and REQUIRES declarations.
FileSemantics BuildSemantics(const FileScan& scan, const AstFile& ast,
                             const FileScan* companion, const AstFile* companion_ast);

// True if `name` called bare (or std::/::-qualified, but not as a member) is
// a blocking primitive: file IO, fsync, sleep, system.
bool IsBlockingCall(const std::string& name);

}  // namespace raslint
}  // namespace ras

#endif  // RAS_TOOLS_RASLINT_SYMBOLS_H_
